//! Physical registers, register classes and register masks.

/// A physical register, indexing into a [`RegFile`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PReg(pub u8);

impl PReg {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl std::fmt::Debug for PReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

/// Software usage convention of a register (paper §2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegClass {
    /// Not preserved across calls; the caller saves it around calls when it
    /// holds a live value.
    CallerSaved,
    /// Preserved across calls; a procedure that uses it must save/restore it
    /// (at entry/exit or shrink-wrapped).
    CalleeSaved,
}

/// A set of physical registers as a bit mask (at most 32 registers).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegMask(pub u32);

impl RegMask {
    /// The empty mask.
    pub const EMPTY: RegMask = RegMask(0);

    /// A mask containing exactly `r`.
    pub fn single(r: PReg) -> Self {
        RegMask(1 << r.0)
    }

    /// Whether `r` is in the mask.
    pub fn contains(self, r: PReg) -> bool {
        self.0 & (1 << r.0) != 0
    }

    /// Adds `r`.
    pub fn insert(&mut self, r: PReg) {
        self.0 |= 1 << r.0;
    }

    /// Removes `r`.
    pub fn remove(&mut self, r: PReg) {
        self.0 &= !(1 << r.0);
    }

    /// Union.
    pub fn union(self, other: RegMask) -> RegMask {
        RegMask(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersect(self, other: RegMask) -> RegMask {
        RegMask(self.0 & other.0)
    }

    /// Whether the mask is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the mask.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over members in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = PReg> {
        (0..32u8).filter(move |i| self.0 & (1 << i) != 0).map(PReg)
    }
}

impl std::ops::BitOr for RegMask {
    type Output = RegMask;
    fn bitor(self, rhs: RegMask) -> RegMask {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for RegMask {
    fn bitor_assign(&mut self, rhs: RegMask) {
        self.0 |= rhs.0;
    }
}

impl std::fmt::Debug for RegMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<PReg> for RegMask {
    fn from_iter<I: IntoIterator<Item = PReg>>(iter: I) -> Self {
        let mut m = RegMask::EMPTY;
        for r in iter {
            m.insert(r);
        }
        m
    }
}

/// Parameterized description of a register file *and* its calling
/// convention, from which every [`RegFile`] is built.
///
/// The file always carries four reserved registers (two assembler
/// scratches, the return-value register and the link register) followed by
/// three blocks: `arg_regs` argument registers (caller-saved by
/// convention), `caller_regs` plain caller-saved registers of which the
/// first `caller_alloc` are allocatable, and `callee_regs` callee-saved
/// registers of which the first `callee_alloc` are allocatable. Keeping
/// non-allocatable registers *present* (classed but withheld from the
/// allocator) reproduces the paper's Table 2 methodology, where the
/// machine does not shrink — only the allocator's freedom does.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConventionSpec {
    /// Argument registers (`a0..`), always caller-saved by convention.
    pub arg_regs: usize,
    /// Whether the argument registers are also allocatable.
    pub args_allocatable: bool,
    /// Caller-saved registers present in the file (`t0..`).
    pub caller_regs: usize,
    /// Allocatable prefix of the caller-saved block.
    pub caller_alloc: usize,
    /// Callee-saved registers present in the file (`s0..`).
    pub callee_regs: usize,
    /// Allocatable prefix of the callee-saved block.
    pub callee_alloc: usize,
}

/// Reserved registers every file carries: two scratches, `rv` and `ra`.
const NUM_RESERVED: usize = 4;

impl ConventionSpec {
    /// The MIPS-family layout of the paper's measurements: 4 argument
    /// registers, 11 caller-saved, 9 callee-saved, with the allocatable
    /// sets restricted to the given per-class counts (Table 2 runs with
    /// (7, 0) and (0, 7)). The argument registers are allocatable only in
    /// the unrestricted configuration, exactly as the paper's compiler
    /// behaves.
    pub fn mips_family(caller_alloc: usize, callee_alloc: usize) -> Self {
        ConventionSpec {
            arg_regs: 4,
            args_allocatable: caller_alloc == 11 && callee_alloc == 9,
            caller_regs: 11,
            caller_alloc,
            callee_regs: 9,
            callee_alloc,
        }
    }

    /// A fully-allocatable convention point for the search mode: a pool of
    /// `pool` registers whose first `caller` are caller-saved (the rest
    /// callee-saved), with the first `args` caller-saved registers doubling
    /// as argument registers. This models sweeping the *software*
    /// convention over fixed hardware: the file's size never changes
    /// within one pool, only the caller/callee partition and the
    /// argument-register count do.
    pub fn convention(pool: usize, caller: usize, args: usize) -> Self {
        assert!(caller <= pool, "caller-saved count exceeds the pool");
        assert!(args <= caller, "argument registers must be caller-saved");
        ConventionSpec {
            arg_regs: args,
            args_allocatable: true,
            caller_regs: caller - args,
            caller_alloc: caller - args,
            callee_regs: pool - caller,
            callee_alloc: pool - caller,
        }
    }

    /// Total registers the spec describes, reserved ones included.
    pub fn num_regs(&self) -> usize {
        NUM_RESERVED + self.arg_regs + self.caller_regs + self.callee_regs
    }

    /// Size of the allocatable set.
    pub fn num_allocatable(&self) -> usize {
        (if self.args_allocatable {
            self.arg_regs
        } else {
            0
        }) + self.caller_alloc
            + self.callee_alloc
    }

    /// Checks the spec fits the machine model.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint: an allocatable
    /// prefix longer than its block, or a file too large for a 32-bit
    /// [`RegMask`].
    pub fn validate(&self) -> Result<(), String> {
        if self.caller_alloc > self.caller_regs {
            return Err(format!(
                "caller_alloc {} exceeds the {} caller-saved registers present",
                self.caller_alloc, self.caller_regs
            ));
        }
        if self.callee_alloc > self.callee_regs {
            return Err(format!(
                "callee_alloc {} exceeds the {} callee-saved registers present",
                self.callee_alloc, self.callee_regs
            ));
        }
        if self.num_regs() > 32 {
            return Err(format!(
                "{} registers do not fit a 32-bit RegMask",
                self.num_regs()
            ));
        }
        Ok(())
    }
}

/// Description of the machine's register file.
///
/// The default layout mirrors the MIPS R2000 as used in the paper (§8):
/// 20 general registers available to the allocator — 11 caller-saved and 9
/// callee-saved — plus 4 argument registers that behave as caller-saved when
/// not carrying parameters, a return-value register, a link register and two
/// assembler scratch registers reserved for memory-resident operands.
/// Other shapes — register-starved files, skewed caller/callee splits,
/// searched conventions — are built from a [`ConventionSpec`].
#[derive(Clone, Debug)]
pub struct RegFile {
    spec: ConventionSpec,
    names: Vec<String>,
    class: Vec<Option<RegClass>>,
    allocatable: Vec<PReg>,
    param_regs: Vec<PReg>,
    ret_reg: PReg,
    scratch: [PReg; 2],
    ra: PReg,
}

impl RegFile {
    /// The full MIPS-like register file (24 allocatable registers: 4 param +
    /// 11 caller-saved + 9 callee-saved).
    pub fn mips_like() -> Self {
        Self::with_class_limits(11, 9)
    }

    /// A register file whose allocatable set is restricted to `caller`
    /// caller-saved and `callee` callee-saved registers (Table 2 runs with
    /// (7, 0) and (0, 7)). The four argument registers remain allocatable
    /// only in the unrestricted configuration.
    ///
    /// # Panics
    ///
    /// Panics when `caller > 11` or `callee > 9`.
    pub fn with_class_limits(caller: usize, callee: usize) -> Self {
        assert!(caller <= 11, "at most 11 caller-saved registers");
        assert!(callee <= 9, "at most 9 callee-saved registers");
        Self::from_spec(ConventionSpec::mips_family(caller, callee))
    }

    /// A fully-allocatable searched convention: see
    /// [`ConventionSpec::convention`].
    ///
    /// # Panics
    ///
    /// Panics when `caller > pool` or `args > caller`, or when the pool
    /// does not fit the machine model.
    pub fn convention(pool: usize, caller: usize, args: usize) -> Self {
        Self::from_spec(ConventionSpec::convention(pool, caller, args))
    }

    /// Builds the register file a [`ConventionSpec`] describes.
    ///
    /// # Panics
    ///
    /// Panics when [`ConventionSpec::validate`] rejects the spec.
    pub fn from_spec(spec: ConventionSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid convention spec: {e}");
        }

        let mut names = Vec::new();
        let mut class = Vec::new();
        let mut push = |n: String, c: Option<RegClass>| -> PReg {
            let r = PReg(names.len() as u8);
            names.push(n);
            class.push(c);
            r
        };

        let scratch0 = push("at0".into(), None);
        let scratch1 = push("at1".into(), None);
        let ret_reg = push("rv".into(), None);
        let ra = push("ra".into(), None);
        let param_regs: Vec<PReg> = (0..spec.arg_regs)
            .map(|i| push(format!("a{i}"), Some(RegClass::CallerSaved)))
            .collect();
        let t_regs: Vec<PReg> = (0..spec.caller_regs)
            .map(|i| push(format!("t{i}"), Some(RegClass::CallerSaved)))
            .collect();
        let s_regs: Vec<PReg> = (0..spec.callee_regs)
            .map(|i| push(format!("s{i}"), Some(RegClass::CalleeSaved)))
            .collect();

        let mut allocatable = Vec::new();
        if spec.args_allocatable {
            allocatable.extend(param_regs.iter().copied());
        }
        allocatable.extend(t_regs.iter().take(spec.caller_alloc));
        allocatable.extend(s_regs.iter().take(spec.callee_alloc));

        RegFile {
            spec,
            names,
            class,
            allocatable,
            param_regs,
            ret_reg,
            scratch: [scratch0, scratch1],
            ra,
        }
    }

    /// The spec this file was built from.
    pub fn spec(&self) -> ConventionSpec {
        self.spec
    }

    /// Stable fingerprint of the whole layout: names, classes, allocatable
    /// order, argument registers and reserved-register positions. Two
    /// files compare equal under allocation (and may share cache entries)
    /// exactly when their fingerprints match; any partition, arg-count or
    /// naming difference separates them.
    pub fn fingerprint(&self) -> u64 {
        let mut h = ipra_ir::Fnv64::new();
        h.write_usize(self.num_regs());
        for i in 0..self.num_regs() {
            let r = PReg(i as u8);
            h.write_str(self.name(r));
            h.write_u8(match self.class(r) {
                None => 0,
                Some(RegClass::CallerSaved) => 1,
                Some(RegClass::CalleeSaved) => 2,
            });
        }
        h.write_usize(self.allocatable.len());
        for r in &self.allocatable {
            h.write_u8(r.0);
        }
        h.write_usize(self.param_regs.len());
        for r in &self.param_regs {
            h.write_u8(r.0);
        }
        h.write_u8(self.ret_reg.0);
        h.write_u8(self.ra.0);
        for s in self.scratch {
            h.write_u8(s.0);
        }
        h.finish()
    }

    /// Total number of registers (allocatable and reserved).
    pub fn num_regs(&self) -> usize {
        self.names.len()
    }

    /// Printable name of `r`.
    pub fn name(&self, r: PReg) -> &str {
        &self.names[r.index()]
    }

    /// Class of `r`; `None` for reserved registers.
    pub fn class(&self, r: PReg) -> Option<RegClass> {
        self.class[r.index()]
    }

    /// Registers the allocator may assign, caller-saved first.
    pub fn allocatable(&self) -> &[PReg] {
        &self.allocatable
    }

    /// Allocatable registers of one class.
    pub fn allocatable_of(&self, c: RegClass) -> impl Iterator<Item = PReg> + '_ {
        self.allocatable
            .iter()
            .copied()
            .filter(move |&r| self.class(r) == Some(c))
    }

    /// The four argument registers of the default convention.
    pub fn param_regs(&self) -> &[PReg] {
        &self.param_regs
    }

    /// Return-value register.
    pub fn ret_reg(&self) -> PReg {
        self.ret_reg
    }

    /// Link register (return address).
    pub fn ra(&self) -> PReg {
        self.ra
    }

    /// The two scratch registers reserved for memory-resident operands.
    pub fn scratch(&self) -> [PReg; 2] {
        self.scratch
    }

    /// Mask of all caller-saved registers that a call under the *default*
    /// convention may clobber: argument registers, all caller-saved
    /// registers, and the return-value register.
    pub fn default_clobbers(&self) -> RegMask {
        let mut m = RegMask::single(self.ret_reg);
        for (i, c) in self.class.iter().enumerate() {
            if *c == Some(RegClass::CallerSaved) {
                m.insert(PReg(i as u8));
            }
        }
        m
    }

    /// Mask of every callee-saved register (used or not).
    pub fn callee_saved_mask(&self) -> RegMask {
        let mut m = RegMask::EMPTY;
        for (i, c) in self.class.iter().enumerate() {
            if *c == Some(RegClass::CalleeSaved) {
                m.insert(PReg(i as u8));
            }
        }
        m
    }
}

impl Default for RegFile {
    fn default() -> Self {
        Self::mips_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mips_like_shape_matches_paper() {
        let rf = RegFile::mips_like();
        let caller = rf.allocatable_of(RegClass::CallerSaved).count();
        let callee = rf.allocatable_of(RegClass::CalleeSaved).count();
        assert_eq!(caller, 15, "11 caller-saved + 4 argument registers");
        assert_eq!(callee, 9);
        assert_eq!(rf.allocatable().len(), 24);
        assert_eq!(rf.param_regs().len(), 4);
        assert!(rf.num_regs() <= 32, "fits a RegMask");
        // Reserved registers are not allocatable or classed.
        assert_eq!(rf.class(rf.ret_reg()), None);
        assert_eq!(rf.class(rf.ra()), None);
        for s in rf.scratch() {
            assert_eq!(rf.class(s), None);
            assert!(!rf.allocatable().contains(&s));
        }
    }

    #[test]
    fn class_limits_for_table2() {
        let d = RegFile::with_class_limits(7, 0);
        assert_eq!(d.allocatable().len(), 7);
        assert!(d.allocatable_of(RegClass::CalleeSaved).next().is_none());
        let e = RegFile::with_class_limits(0, 7);
        assert_eq!(e.allocatable().len(), 7);
        assert!(e.allocatable_of(RegClass::CallerSaved).next().is_none());
        // Param registers exist either way (ABI), just not allocatable.
        assert_eq!(d.param_regs().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at most 11")]
    fn excessive_limit_panics() {
        let _ = RegFile::with_class_limits(12, 0);
    }

    #[test]
    fn default_clobbers_cover_caller_saved_and_rv() {
        let rf = RegFile::mips_like();
        let m = rf.default_clobbers();
        assert!(m.contains(rf.ret_reg()));
        for r in rf.param_regs() {
            assert!(m.contains(*r));
        }
        for r in rf.allocatable_of(RegClass::CalleeSaved) {
            assert!(
                !m.contains(r),
                "callee-saved regs preserved by default convention"
            );
        }
        assert_eq!(rf.callee_saved_mask().count(), 9);
    }

    #[test]
    fn convention_constructor_partitions_the_pool() {
        let rf = RegFile::convention(8, 6, 2);
        assert_eq!(rf.allocatable().len(), 8);
        assert_eq!(rf.param_regs().len(), 2);
        assert_eq!(rf.allocatable_of(RegClass::CallerSaved).count(), 6);
        assert_eq!(rf.allocatable_of(RegClass::CalleeSaved).count(), 2);
        // Argument registers are caller-saved and allocatable.
        for &a in rf.param_regs() {
            assert_eq!(rf.class(a), Some(RegClass::CallerSaved));
            assert!(rf.allocatable().contains(&a));
        }
        // Degenerate but legal corners.
        let all_callee = RegFile::convention(6, 0, 0);
        assert_eq!(all_callee.param_regs().len(), 0);
        assert_eq!(all_callee.allocatable_of(RegClass::CalleeSaved).count(), 6);
        let all_args = RegFile::convention(4, 4, 4);
        assert_eq!(all_args.param_regs().len(), 4);
        assert_eq!(all_args.allocatable().len(), 4);
    }

    #[test]
    fn spec_round_trips_and_validates() {
        let spec = ConventionSpec::convention(8, 6, 2);
        assert_eq!(RegFile::from_spec(spec).spec(), spec);
        assert_eq!(
            RegFile::mips_like().spec(),
            ConventionSpec::mips_family(11, 9)
        );
        assert!(ConventionSpec {
            caller_alloc: 12,
            ..ConventionSpec::mips_family(11, 9)
        }
        .validate()
        .is_err());
        assert!(ConventionSpec::convention(29, 10, 2).validate().is_err());
    }

    #[test]
    fn fingerprint_separates_partitions() {
        let a = RegFile::convention(8, 6, 2);
        assert_eq!(a.fingerprint(), RegFile::convention(8, 6, 2).fingerprint());
        assert_ne!(a.fingerprint(), RegFile::convention(8, 5, 2).fingerprint());
        assert_ne!(a.fingerprint(), RegFile::convention(8, 6, 1).fingerprint());
        assert_ne!(
            RegFile::with_class_limits(7, 0).fingerprint(),
            RegFile::with_class_limits(0, 7).fingerprint()
        );
    }

    #[test]
    #[should_panic(expected = "argument registers must be caller-saved")]
    fn convention_rejects_args_beyond_caller() {
        let _ = RegFile::convention(8, 1, 2);
    }

    #[test]
    fn regmask_ops() {
        let mut m = RegMask::EMPTY;
        m.insert(PReg(3));
        m.insert(PReg(17));
        assert!(m.contains(PReg(3)));
        assert_eq!(m.count(), 2);
        let n: RegMask = [PReg(3), PReg(4)].into_iter().collect();
        assert_eq!(m.intersect(n), RegMask::single(PReg(3)));
        assert_eq!((m | n).count(), 3);
        m.remove(PReg(3));
        assert!(!m.contains(PReg(3)));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![PReg(17)]);
    }
}
