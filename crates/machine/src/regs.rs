//! Physical registers, register classes and register masks.

/// A physical register, indexing into a [`RegFile`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PReg(pub u8);

impl PReg {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl std::fmt::Debug for PReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

/// Software usage convention of a register (paper §2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegClass {
    /// Not preserved across calls; the caller saves it around calls when it
    /// holds a live value.
    CallerSaved,
    /// Preserved across calls; a procedure that uses it must save/restore it
    /// (at entry/exit or shrink-wrapped).
    CalleeSaved,
}

/// A set of physical registers as a bit mask (at most 32 registers).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegMask(pub u32);

impl RegMask {
    /// The empty mask.
    pub const EMPTY: RegMask = RegMask(0);

    /// A mask containing exactly `r`.
    pub fn single(r: PReg) -> Self {
        RegMask(1 << r.0)
    }

    /// Whether `r` is in the mask.
    pub fn contains(self, r: PReg) -> bool {
        self.0 & (1 << r.0) != 0
    }

    /// Adds `r`.
    pub fn insert(&mut self, r: PReg) {
        self.0 |= 1 << r.0;
    }

    /// Removes `r`.
    pub fn remove(&mut self, r: PReg) {
        self.0 &= !(1 << r.0);
    }

    /// Union.
    pub fn union(self, other: RegMask) -> RegMask {
        RegMask(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersect(self, other: RegMask) -> RegMask {
        RegMask(self.0 & other.0)
    }

    /// Whether the mask is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the mask.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over members in increasing index order.
    pub fn iter(self) -> impl Iterator<Item = PReg> {
        (0..32u8).filter(move |i| self.0 & (1 << i) != 0).map(PReg)
    }
}

impl std::ops::BitOr for RegMask {
    type Output = RegMask;
    fn bitor(self, rhs: RegMask) -> RegMask {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for RegMask {
    fn bitor_assign(&mut self, rhs: RegMask) {
        self.0 |= rhs.0;
    }
}

impl std::fmt::Debug for RegMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<PReg> for RegMask {
    fn from_iter<I: IntoIterator<Item = PReg>>(iter: I) -> Self {
        let mut m = RegMask::EMPTY;
        for r in iter {
            m.insert(r);
        }
        m
    }
}

/// Description of the machine's register file.
///
/// The default layout mirrors the MIPS R2000 as used in the paper (§8):
/// 20 general registers available to the allocator — 11 caller-saved and 9
/// callee-saved — plus 4 argument registers that behave as caller-saved when
/// not carrying parameters, a return-value register, a link register and two
/// assembler scratch registers reserved for memory-resident operands.
#[derive(Clone, Debug)]
pub struct RegFile {
    names: Vec<String>,
    class: Vec<Option<RegClass>>,
    allocatable: Vec<PReg>,
    param_regs: Vec<PReg>,
    ret_reg: PReg,
    scratch: [PReg; 2],
    ra: PReg,
}

impl RegFile {
    /// The full MIPS-like register file (24 allocatable registers: 4 param +
    /// 11 caller-saved + 9 callee-saved).
    pub fn mips_like() -> Self {
        Self::with_class_limits(11, 9)
    }

    /// A register file whose allocatable set is restricted to `caller`
    /// caller-saved and `callee` callee-saved registers (Table 2 runs with
    /// (7, 0) and (0, 7)). The four argument registers remain allocatable
    /// only in the unrestricted configuration.
    ///
    /// # Panics
    ///
    /// Panics when `caller > 11` or `callee > 9`.
    pub fn with_class_limits(caller: usize, callee: usize) -> Self {
        assert!(caller <= 11, "at most 11 caller-saved registers");
        assert!(callee <= 9, "at most 9 callee-saved registers");
        let unrestricted = caller == 11 && callee == 9;

        let mut names = Vec::new();
        let mut class = Vec::new();
        let mut push = |n: String, c: Option<RegClass>| -> PReg {
            let r = PReg(names.len() as u8);
            names.push(n);
            class.push(c);
            r
        };

        let scratch0 = push("at0".into(), None);
        let scratch1 = push("at1".into(), None);
        let ret_reg = push("rv".into(), None);
        let ra = push("ra".into(), None);
        let param_regs: Vec<PReg> = (0..4)
            .map(|i| push(format!("a{i}"), Some(RegClass::CallerSaved)))
            .collect();
        let t_regs: Vec<PReg> = (0..11)
            .map(|i| push(format!("t{i}"), Some(RegClass::CallerSaved)))
            .collect();
        let s_regs: Vec<PReg> = (0..9)
            .map(|i| push(format!("s{i}"), Some(RegClass::CalleeSaved)))
            .collect();

        let mut allocatable = Vec::new();
        if unrestricted {
            allocatable.extend(param_regs.iter().copied());
        }
        allocatable.extend(t_regs.iter().take(caller));
        allocatable.extend(s_regs.iter().take(callee));

        RegFile {
            names,
            class,
            allocatable,
            param_regs,
            ret_reg,
            scratch: [scratch0, scratch1],
            ra,
        }
    }

    /// Total number of registers (allocatable and reserved).
    pub fn num_regs(&self) -> usize {
        self.names.len()
    }

    /// Printable name of `r`.
    pub fn name(&self, r: PReg) -> &str {
        &self.names[r.index()]
    }

    /// Class of `r`; `None` for reserved registers.
    pub fn class(&self, r: PReg) -> Option<RegClass> {
        self.class[r.index()]
    }

    /// Registers the allocator may assign, caller-saved first.
    pub fn allocatable(&self) -> &[PReg] {
        &self.allocatable
    }

    /// Allocatable registers of one class.
    pub fn allocatable_of(&self, c: RegClass) -> impl Iterator<Item = PReg> + '_ {
        self.allocatable
            .iter()
            .copied()
            .filter(move |&r| self.class(r) == Some(c))
    }

    /// The four argument registers of the default convention.
    pub fn param_regs(&self) -> &[PReg] {
        &self.param_regs
    }

    /// Return-value register.
    pub fn ret_reg(&self) -> PReg {
        self.ret_reg
    }

    /// Link register (return address).
    pub fn ra(&self) -> PReg {
        self.ra
    }

    /// The two scratch registers reserved for memory-resident operands.
    pub fn scratch(&self) -> [PReg; 2] {
        self.scratch
    }

    /// Mask of all caller-saved registers that a call under the *default*
    /// convention may clobber: argument registers, all caller-saved
    /// registers, and the return-value register.
    pub fn default_clobbers(&self) -> RegMask {
        let mut m = RegMask::single(self.ret_reg);
        for (i, c) in self.class.iter().enumerate() {
            if *c == Some(RegClass::CallerSaved) {
                m.insert(PReg(i as u8));
            }
        }
        m
    }

    /// Mask of every callee-saved register (used or not).
    pub fn callee_saved_mask(&self) -> RegMask {
        let mut m = RegMask::EMPTY;
        for (i, c) in self.class.iter().enumerate() {
            if *c == Some(RegClass::CalleeSaved) {
                m.insert(PReg(i as u8));
            }
        }
        m
    }
}

impl Default for RegFile {
    fn default() -> Self {
        Self::mips_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mips_like_shape_matches_paper() {
        let rf = RegFile::mips_like();
        let caller = rf.allocatable_of(RegClass::CallerSaved).count();
        let callee = rf.allocatable_of(RegClass::CalleeSaved).count();
        assert_eq!(caller, 15, "11 caller-saved + 4 argument registers");
        assert_eq!(callee, 9);
        assert_eq!(rf.allocatable().len(), 24);
        assert_eq!(rf.param_regs().len(), 4);
        assert!(rf.num_regs() <= 32, "fits a RegMask");
        // Reserved registers are not allocatable or classed.
        assert_eq!(rf.class(rf.ret_reg()), None);
        assert_eq!(rf.class(rf.ra()), None);
        for s in rf.scratch() {
            assert_eq!(rf.class(s), None);
            assert!(!rf.allocatable().contains(&s));
        }
    }

    #[test]
    fn class_limits_for_table2() {
        let d = RegFile::with_class_limits(7, 0);
        assert_eq!(d.allocatable().len(), 7);
        assert!(d.allocatable_of(RegClass::CalleeSaved).next().is_none());
        let e = RegFile::with_class_limits(0, 7);
        assert_eq!(e.allocatable().len(), 7);
        assert!(e.allocatable_of(RegClass::CallerSaved).next().is_none());
        // Param registers exist either way (ABI), just not allocatable.
        assert_eq!(d.param_regs().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at most 11")]
    fn excessive_limit_panics() {
        let _ = RegFile::with_class_limits(12, 0);
    }

    #[test]
    fn default_clobbers_cover_caller_saved_and_rv() {
        let rf = RegFile::mips_like();
        let m = rf.default_clobbers();
        assert!(m.contains(rf.ret_reg()));
        for r in rf.param_regs() {
            assert!(m.contains(*r));
        }
        for r in rf.allocatable_of(RegClass::CalleeSaved) {
            assert!(
                !m.contains(r),
                "callee-saved regs preserved by default convention"
            );
        }
        assert_eq!(rf.callee_saved_mask().count(), 9);
    }

    #[test]
    fn regmask_ops() {
        let mut m = RegMask::EMPTY;
        m.insert(PReg(3));
        m.insert(PReg(17));
        assert!(m.contains(PReg(3)));
        assert_eq!(m.count(), 2);
        let n: RegMask = [PReg(3), PReg(4)].into_iter().collect();
        assert_eq!(m.intersect(n), RegMask::single(PReg(3)));
        assert_eq!((m | n).count(), 3);
        m.remove(PReg(3));
        assert!(!m.contains(PReg(3)));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![PReg(17)]);
    }
}
