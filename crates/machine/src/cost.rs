//! Cycle cost model for the simulator.
//!
//! The paper measures cycles with `pixie` on an R2000, where most
//! instructions take one cycle and memory operations dominate only through
//! their count and (cache-free) latency. We use a documented, configurable
//! approximation; only *relative* numbers are compared with the paper.

use ipra_ir::BinOp;

/// Cycle counts per operation kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// Simple ALU operation / copy / compare.
    pub alu: u64,
    /// Integer multiply (R2000 multiplies are multi-cycle).
    pub mul: u64,
    /// Integer divide.
    pub div: u64,
    /// Memory load (includes the load-delay slot we assume unfilled).
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// Branch or jump.
    pub branch: u64,
    /// Call (jump-and-link plus its delay slot).
    pub call: u64,
    /// Return jump.
    pub ret: u64,
    /// Output operation (modelled as a cheap system stub).
    pub print: u64,
}

impl CostModel {
    /// The R2000-flavoured default.
    pub fn r2000() -> Self {
        CostModel {
            alu: 1,
            mul: 10,
            div: 30,
            load: 2,
            store: 1,
            branch: 1,
            call: 2,
            ret: 2,
            print: 1,
        }
    }

    /// Cycles for a binary operator.
    pub fn bin_op(&self, op: BinOp) -> u64 {
        match op {
            BinOp::Mul => self.mul,
            BinOp::Div | BinOp::Rem => self.div,
            _ => self.alu,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::r2000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_r2000_flavoured() {
        let c = CostModel::default();
        assert_eq!(c.bin_op(BinOp::Add), 1);
        assert_eq!(c.bin_op(BinOp::Mul), c.mul);
        assert_eq!(c.bin_op(BinOp::Rem), c.div);
        assert!(
            c.load > c.alu,
            "memory must cost more than ALU for the paper's trade-offs"
        );
    }
}
