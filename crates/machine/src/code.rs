//! Lowered machine code: physical registers, explicit frames, explicit
//! save/restore and spill traffic.

use ipra_ir::{entity_id, BinOp, BlockId, EntityVec, FuncId, GlobalData, GlobalId, UnOp};

use crate::regs::PReg;

entity_id!(
    /// A slot in a machine function's stack frame.
    pub struct FrameSlotId, "fs"
);

/// What a frame slot is for (used by the assembly printer and by tests).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotPurpose {
    /// Home location of a virtual register that lives in memory (or is
    /// transferred at split-range boundaries).
    Home,
    /// A local array from the IR.
    Array,
    /// Save area for a register (callee-saved, caller-saved around a call,
    /// or the link register).
    Save,
    /// Outgoing stack argument staging (beyond the register arguments).
    Outgoing,
}

/// A machine frame slot.
#[derive(Clone, Debug)]
pub struct FrameSlot {
    /// Number of 64-bit cells.
    pub size: u32,
    /// Why the slot exists.
    pub purpose: SlotPurpose,
    /// Debug label.
    pub label: String,
}

/// Accounting class of a memory access (Table 1 column II counts every
/// class except [`MemClass::Data`], since those are exactly the accesses a
/// perfect register allocator could remove).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemClass {
    /// Structural data: arrays, pointers. Not removable by allocation.
    Data,
    /// Scalar variable home-slot traffic (including global scalars and
    /// stack-passed parameters).
    ScalarHome,
    /// Transfer at split live-range boundaries.
    Spill,
    /// Register save/restore (callee-saved, caller-saved around calls, link
    /// register).
    SaveRestore,
}

impl MemClass {
    /// Whether this access counts as a *scalar* load/store in the paper's
    /// measurements.
    pub fn is_scalar(self) -> bool {
        !matches!(self, MemClass::Data)
    }
}

/// Machine operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MOperand {
    /// A physical register.
    Reg(PReg),
    /// An immediate.
    Imm(i64),
}

impl From<PReg> for MOperand {
    fn from(r: PReg) -> Self {
        MOperand::Reg(r)
    }
}

impl From<i64> for MOperand {
    fn from(i: i64) -> Self {
        MOperand::Imm(i)
    }
}

impl std::fmt::Display for MOperand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MOperand::Reg(r) => write!(f, "{r}"),
            MOperand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// Machine address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MAddress {
    /// `global[index]`.
    Global {
        /// Target global.
        global: GlobalId,
        /// Element index.
        index: MOperand,
    },
    /// `frame_slot[index]` in the current frame.
    Frame {
        /// Target slot.
        slot: FrameSlotId,
        /// Element index.
        index: MOperand,
    },
    /// Incoming stack argument `i` of the current frame.
    Incoming(u32),
    /// Outgoing stack argument `i` (becomes the callee's `Incoming(i)` at
    /// the next call). Models the caller's argument-build area at the top of
    /// its frame, exactly as the MIPS ABI does.
    Outgoing(u32),
}

impl MAddress {
    /// Frame-slot shorthand with constant index 0.
    pub fn slot(slot: FrameSlotId) -> Self {
        MAddress::Frame {
            slot,
            index: MOperand::Imm(0),
        }
    }
}

/// Call target.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MCallee {
    /// Statically known function.
    Direct(FuncId),
    /// Function address in a register or immediate.
    Indirect(MOperand),
}

/// A machine instruction.
///
/// Calling convention is fully explicit by this point: argument values have
/// been moved into the agreed registers (or `stack_args`), and the return
/// value is read from the return register after the call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MInst {
    /// `dst = src`.
    Copy {
        /// Destination.
        dst: PReg,
        /// Source.
        src: MOperand,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination.
        dst: PReg,
        /// Left operand.
        lhs: MOperand,
        /// Right operand.
        rhs: MOperand,
    },
    /// `dst = op src`.
    Un {
        /// Operator.
        op: UnOp,
        /// Destination.
        dst: PReg,
        /// Source.
        src: MOperand,
    },
    /// `dst = mem[addr]`.
    Load {
        /// Destination.
        dst: PReg,
        /// Address.
        addr: MAddress,
        /// Accounting class.
        class: MemClass,
    },
    /// `mem[addr] = src`.
    Store {
        /// Source.
        src: MOperand,
        /// Address.
        addr: MAddress,
        /// Accounting class.
        class: MemClass,
    },
    /// Transfer control to `callee`. Register arguments are already in
    /// place; the first `num_stack_args` cells of the caller's outgoing area
    /// (written earlier through [`MAddress::Outgoing`]) become the callee's
    /// incoming stack arguments.
    Call {
        /// Target.
        callee: MCallee,
        /// Number of stack-passed arguments.
        num_stack_args: u32,
    },
    /// `dst = &func`.
    FuncAddr {
        /// Destination.
        dst: PReg,
        /// Function whose address is taken.
        func: FuncId,
    },
    /// Emit a value to the output stream.
    Print {
        /// Value to emit.
        arg: MOperand,
    },
}

/// Machine block terminator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MTerminator {
    /// Return to caller (the return value, if any, is already in the return
    /// register; restores have been emitted before this point).
    Ret,
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on `cond != 0`.
    CondBr {
        /// Condition.
        cond: MOperand,
        /// Target when non-zero.
        then_to: BlockId,
        /// Target when zero.
        else_to: BlockId,
    },
}

/// A machine basic block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MBlock {
    /// Straight-line instructions.
    pub insts: Vec<MInst>,
    /// Terminator.
    pub term: MTerminator,
}

/// A lowered function.
#[derive(Clone, Debug)]
pub struct MFunction {
    /// Name (copied from the IR function).
    pub name: String,
    /// Entry block.
    pub entry: BlockId,
    /// Blocks (same ids as the IR function they were lowered from).
    pub blocks: EntityVec<BlockId, MBlock>,
    /// Frame layout.
    pub frame: EntityVec<FrameSlotId, FrameSlot>,
    /// Number of register parameters the function expects (its first
    /// parameters, in the registers recorded by the allocator's summary).
    pub num_params: usize,
    /// Size of the outgoing-argument area (max stack args over all calls).
    pub max_outgoing: u32,
    /// Whether the function makes no calls.
    pub is_leaf: bool,
}

/// A lowered module, executable by `ipra-sim`.
#[derive(Clone, Debug)]
pub struct MModule {
    /// Lowered functions, same ids as the source module.
    pub funcs: EntityVec<FuncId, MFunction>,
    /// Globals, copied from the source module.
    pub globals: EntityVec<GlobalId, GlobalData>,
    /// Entry point.
    pub main: Option<FuncId>,
}

impl MInst {
    /// Whether the instruction is a memory access of a scalar class.
    pub fn is_scalar_mem(&self) -> bool {
        match self {
            MInst::Load { class, .. } | MInst::Store { class, .. } => class.is_scalar(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_class_scalar_accounting() {
        assert!(!MemClass::Data.is_scalar());
        assert!(MemClass::ScalarHome.is_scalar());
        assert!(MemClass::Spill.is_scalar());
        assert!(MemClass::SaveRestore.is_scalar());
    }

    #[test]
    fn inst_scalar_mem_detection() {
        let l = MInst::Load {
            dst: PReg(4),
            addr: MAddress::slot(FrameSlotId(0)),
            class: MemClass::SaveRestore,
        };
        assert!(l.is_scalar_mem());
        let d = MInst::Store {
            src: MOperand::Imm(0),
            addr: MAddress::Global {
                global: GlobalId(0),
                index: MOperand::Imm(0),
            },
            class: MemClass::Data,
        };
        assert!(!d.is_scalar_mem());
        let c = MInst::Copy {
            dst: PReg(0),
            src: MOperand::Imm(1),
        };
        assert!(!c.is_scalar_mem());
    }
}
