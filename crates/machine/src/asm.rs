//! Textual "assembly" printer for lowered code.

use std::fmt;

use crate::code::{MAddress, MBlock, MCallee, MFunction, MInst, MModule, MOperand, MTerminator};
use crate::regs::RegFile;

/// Displays a lowered function with register names from a [`RegFile`].
pub struct AsmDisplay<'a> {
    func: &'a MFunction,
    regs: &'a RegFile,
    module: Option<&'a MModule>,
}

impl MFunction {
    /// Renders the function as pseudo-assembly.
    pub fn display<'a>(&'a self, regs: &'a RegFile) -> AsmDisplay<'a> {
        AsmDisplay {
            func: self,
            regs,
            module: None,
        }
    }

    /// Renders with callee names resolved through `module`.
    pub fn display_in<'a>(&'a self, regs: &'a RegFile, module: &'a MModule) -> AsmDisplay<'a> {
        AsmDisplay {
            func: self,
            regs,
            module: Some(module),
        }
    }
}

impl AsmDisplay<'_> {
    fn op(&self, o: MOperand) -> String {
        match o {
            MOperand::Reg(r) => self.regs.name(r).to_string(),
            MOperand::Imm(i) => i.to_string(),
        }
    }

    fn addr(&self, a: MAddress) -> String {
        match a {
            MAddress::Global { global, index } => format!("{global}[{}]", self.op(index)),
            MAddress::Frame { slot, index } => format!("{slot}[{}]", self.op(index)),
            MAddress::Incoming(i) => format!("incoming[{i}]"),
            MAddress::Outgoing(i) => format!("outgoing[{i}]"),
        }
    }

    fn fmt_block(&self, f: &mut fmt::Formatter<'_>, b: &MBlock) -> fmt::Result {
        for inst in &b.insts {
            write!(f, "  ")?;
            match inst {
                MInst::Copy { dst, src } => {
                    writeln!(f, "move {}, {}", self.regs.name(*dst), self.op(*src))?
                }
                MInst::Bin { op, dst, lhs, rhs } => writeln!(
                    f,
                    "{} {}, {}, {}",
                    op.mnemonic(),
                    self.regs.name(*dst),
                    self.op(*lhs),
                    self.op(*rhs)
                )?,
                MInst::Un { op, dst, src } => writeln!(
                    f,
                    "{} {}, {}",
                    op.mnemonic(),
                    self.regs.name(*dst),
                    self.op(*src)
                )?,
                MInst::Load { dst, addr, class } => writeln!(
                    f,
                    "ld {}, {} ; {:?}",
                    self.regs.name(*dst),
                    self.addr(*addr),
                    class
                )?,
                MInst::Store { src, addr, class } => writeln!(
                    f,
                    "st {}, {} ; {:?}",
                    self.op(*src),
                    self.addr(*addr),
                    class
                )?,
                MInst::Call {
                    callee,
                    num_stack_args,
                } => {
                    match callee {
                        MCallee::Direct(id) => match self.module {
                            Some(m) => write!(f, "call @{}", m.funcs[*id].name)?,
                            None => write!(f, "call {id}")?,
                        },
                        MCallee::Indirect(t) => write!(f, "call_indirect {}", self.op(*t))?,
                    }
                    if *num_stack_args > 0 {
                        write!(f, " stack({num_stack_args})")?;
                    }
                    writeln!(f)?
                }
                MInst::FuncAddr { dst, func } => match self.module {
                    Some(m) => {
                        writeln!(f, "la {}, @{}", self.regs.name(*dst), m.funcs[*func].name)?
                    }
                    None => writeln!(f, "la {}, {func}", self.regs.name(*dst))?,
                },
                MInst::Print { arg } => writeln!(f, "print {}", self.op(*arg))?,
            }
        }
        match b.term {
            MTerminator::Ret => writeln!(f, "  jr ra"),
            MTerminator::Br(t) => writeln!(f, "  j {t}"),
            MTerminator::CondBr {
                cond,
                then_to,
                else_to,
            } => {
                writeln!(f, "  bnez {}, {then_to} ; else {else_to}", self.op(cond))
            }
        }
    }
}

impl fmt::Display for AsmDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: ; frame: {} slots, params: {}",
            self.func.name,
            self.func.frame.len(),
            self.func.num_params
        )?;
        for (id, slot) in self.func.frame.iter() {
            writeln!(
                f,
                "  .slot {id} {} [{}] ; {:?}",
                slot.label, slot.size, slot.purpose
            )?;
        }
        for (id, b) in self.func.blocks.iter() {
            let marker = if id == self.func.entry {
                " ; entry"
            } else {
                ""
            };
            writeln!(f, "{id}:{marker}")?;
            self.fmt_block(f, b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{FrameSlot, MemClass, SlotPurpose};
    use crate::regs::PReg;
    use ipra_ir::{BlockId, EntityVec};

    #[test]
    fn prints_readable_assembly() {
        let rf = RegFile::mips_like();
        let mut blocks = EntityVec::new();
        let r = rf.allocatable()[0];
        blocks.push(MBlock {
            insts: vec![
                MInst::Copy {
                    dst: r,
                    src: MOperand::Imm(7),
                },
                MInst::Load {
                    dst: PReg(0),
                    addr: MAddress::slot(crate::code::FrameSlotId(0)),
                    class: MemClass::SaveRestore,
                },
                MInst::Print {
                    arg: MOperand::Reg(r),
                },
            ],
            term: MTerminator::Ret,
        });
        let mut frame = EntityVec::new();
        frame.push(FrameSlot {
            size: 1,
            purpose: SlotPurpose::Save,
            label: "save_s0".into(),
        });
        let f = MFunction {
            name: "demo".into(),
            entry: BlockId(0),
            blocks,
            frame,
            num_params: 0,
            max_outgoing: 0,
            is_leaf: true,
        };
        let s = f.display(&rf).to_string();
        assert!(s.contains("demo:"), "{s}");
        assert!(s.contains("move a0, 7"), "{s}");
        assert!(s.contains("ld at0, fs0[0] ; SaveRestore"), "{s}");
        assert!(s.contains("jr ra"), "{s}");
    }
}
