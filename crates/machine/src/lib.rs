//! # ipra-machine — target description and lowered code
//!
//! A MIPS R2000-like register file (the machine of the paper's §8
//! measurements), a configurable cycle cost model, and the lowered machine
//! code form produced by the register allocator and executed by `ipra-sim`.
//! Beyond the paper's machine, a named-target registry
//! ([`Target::by_name`]) and a parameterized [`ConventionSpec`] describe
//! irregular register files and searched calling conventions.
//!
//! ```
//! use ipra_machine::{RegClass, RegFile, Target};
//!
//! let rf = RegFile::mips_like();
//! assert_eq!(rf.allocatable_of(RegClass::CalleeSaved).count(), 9);
//! // Table 2 configuration E: only 7 callee-saved registers.
//! let e = RegFile::with_class_limits(0, 7);
//! assert_eq!(e.allocatable().len(), 7);
//! // An irregular embedded target from the registry.
//! let t = Target::by_name("embedded8").unwrap();
//! assert_eq!(t.regs.allocatable().len(), 8);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod code;
pub mod cost;
pub mod regs;
pub mod summary;
pub mod target;

pub use code::{
    FrameSlot, FrameSlotId, MAddress, MBlock, MCallee, MFunction, MInst, MModule, MOperand,
    MTerminator, MemClass, SlotPurpose,
};
pub use cost::CostModel;
pub use regs::{ConventionSpec, PReg, RegClass, RegFile, RegMask};
pub use summary::{FuncSummary, ParamLoc};
pub use target::{Target, TargetInfo};
