//! Synthetic program generators.
//!
//! Two families: random well-formed Mini sources (terminating by
//! construction) for differential fuzzing of the whole pipeline, and
//! parameterized call-tree IR modules for allocator ablations and
//! throughput benchmarks.

use std::fmt::Write as _;

use ipra_ir::builder::FunctionBuilder;
use ipra_ir::{BinOp, FuncId, Module, Operand};

/// A tiny deterministic PRNG (xorshift64* seeded through splitmix64), so
/// the generators need no external crates and produce identical programs
/// for a given seed on every platform.
#[derive(Clone, Debug)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from an arbitrary seed (zero included).
    pub fn new(seed: u64) -> Self {
        // One splitmix64 step scrambles low-entropy seeds and guarantees a
        // non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64Star { state: z | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`). The modulo bias is
    /// irrelevant for program generation.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform value in `lo..hi` (half-open; `lo` when the range is empty).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            lo
        } else {
            lo + self.below((hi - lo) as u64) as i64
        }
    }

    /// Fair coin flip.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Tuning knobs for [`random_source`].
#[derive(Clone, Copy, Debug)]
pub struct SourceConfig {
    /// Number of functions besides `main`.
    pub num_funcs: usize,
    /// Number of global scalars.
    pub num_globals: usize,
    /// Number of global arrays.
    pub num_arrays: usize,
    /// Statements per function body.
    pub stmts_per_func: usize,
    /// Maximum statement nesting depth.
    pub max_depth: usize,
}

impl Default for SourceConfig {
    fn default() -> Self {
        SourceConfig {
            num_funcs: 6,
            num_globals: 4,
            num_arrays: 2,
            stmts_per_func: 8,
            max_depth: 3,
        }
    }
}

/// Generates a random, deterministic, *terminating* Mini program.
///
/// Termination by construction: every loop is a canonical bounded counter
/// loop whose induction variable is written nowhere else, and the call
/// graph is acyclic (functions only call earlier functions).
pub fn random_source(seed: u64, cfg: &SourceConfig) -> String {
    let mut rng = XorShift64Star::new(seed);
    let mut out = String::new();
    let _ = writeln!(out, "// random program, seed {seed}");

    for g in 0..cfg.num_globals {
        let _ = writeln!(out, "global g{g}: int = {};", rng.range_i64(-50, 50));
    }
    for a in 0..cfg.num_arrays {
        let _ = writeln!(out, "global arr{a}: [int; 16];");
    }

    // Fix arities up front so call sites always match.
    let arities: Vec<usize> = (0..cfg.num_funcs).map(|_| rng.below(4) as usize).collect();
    let mut gen = SrcGen {
        rng,
        cfg: *cfg,
        loop_counter: 0,
        arities,
        loop_depth: 0,
    };

    // Functions f0..fN; fK may call f0..f(K-1) (acyclic, so terminating).
    for f in 0..cfg.num_funcs {
        let nparams = gen.arities[f];
        let params: Vec<String> = (0..nparams).map(|i| format!("p{i}")).collect();
        let header: Vec<String> = params.iter().map(|p| format!("{p}: int")).collect();
        let _ = writeln!(out, "fn f{f}({}) -> int {{", header.join(", "));
        let mut scope: Vec<String> = params;
        gen.stmts(
            &mut out,
            f,
            &mut scope,
            cfg.stmts_per_func,
            cfg.max_depth,
            1,
        );
        let _ = writeln!(out, "  return {};", gen.expr(f, &scope, 2));
        let _ = writeln!(out, "}}");
    }

    let _ = writeln!(out, "fn main() {{");
    let mut scope: Vec<String> = Vec::new();
    let n = cfg.num_funcs;
    gen.stmts(
        &mut out,
        n,
        &mut scope,
        cfg.stmts_per_func,
        cfg.max_depth,
        1,
    );
    for f in 0..n {
        let call = gen.call_expr(f, n, &scope, 1);
        let _ = writeln!(out, "  print({call});");
    }
    for g in 0..cfg.num_globals {
        let _ = writeln!(out, "  print(g{g});");
    }
    let _ = writeln!(out, "}}");
    out
}

struct SrcGen {
    rng: XorShift64Star,
    cfg: SourceConfig,
    loop_counter: usize,
    arities: Vec<usize>,
    /// Loop nesting depth at the generation point: calls are only generated
    /// outside loops, so total call counts stay polynomial and the
    /// reference interpreter never exhausts its budget.
    loop_depth: usize,
}

impl SrcGen {
    /// An expression usable inside function `f` (callable: f0..f{f-1}).
    fn expr(&mut self, f: usize, scope: &[String], depth: usize) -> String {
        if depth == 0 {
            return self.atom(scope);
        }
        match self.rng.below(10) {
            0..=3 => {
                let op = ["+", "-", "*", "&", "|", "^"][self.rng.below(6) as usize];
                let l = self.expr(f, scope, depth - 1);
                let r = self.expr(f, scope, depth - 1);
                format!("({l} {op} {r})")
            }
            4 => {
                // Division/remainder by a non-zero constant only.
                let op = if self.rng.coin() { "/" } else { "%" };
                let l = self.expr(f, scope, depth - 1);
                let c = self.rng.range_i64(1, 9);
                format!("({l} {op} {c})")
            }
            5 => {
                let op = ["==", "!=", "<", "<=", ">", ">="][self.rng.below(6) as usize];
                let l = self.expr(f, scope, depth - 1);
                let r = self.expr(f, scope, depth - 1);
                format!("({l} {op} {r})")
            }
            6 if f > 0 && self.loop_depth == 0 => {
                let callee = self.rng.below(f as u64) as usize;
                self.call_expr(callee, f, scope, depth)
            }
            7 if self.cfg.num_arrays > 0 => {
                let a = self.rng.below(self.cfg.num_arrays as u64) as usize;
                let i = self.expr(f, scope, depth - 1);
                format!("arr{a}[(({i}) % 16 + 16) % 16]")
            }
            8 => {
                let inner = self.expr(f, scope, depth - 1);
                format!("(-({inner}))")
            }
            _ => self.atom(scope),
        }
    }

    fn atom(&mut self, scope: &[String]) -> String {
        let choices = scope.len() + self.cfg.num_globals + 1;
        let k = self.rng.below(choices.max(1) as u64) as usize;
        if k < scope.len() {
            scope[k].clone()
        } else if k < scope.len() + self.cfg.num_globals {
            format!("g{}", k - scope.len())
        } else {
            format!("{}", self.rng.range_i64(-99, 100))
        }
    }

    /// A call to `f{callee}` with arguments generated in function `f`'s
    /// scope (argument sub-expressions may themselves call earlier
    /// functions).
    fn call_expr(&mut self, callee: usize, f: usize, scope: &[String], depth: usize) -> String {
        let args: Vec<String> = (0..self.arities[callee])
            .map(|_| self.expr(f, scope, depth.saturating_sub(1)))
            .collect();
        format!("f{callee}({})", args.join(", "))
    }

    fn stmts(
        &mut self,
        out: &mut String,
        f: usize,
        scope: &mut Vec<String>,
        n: usize,
        depth: usize,
        indent: usize,
    ) {
        let pad = "  ".repeat(indent);
        for _ in 0..n {
            match self.rng.below(10) {
                0..=2 => {
                    let name = format!("v{}", scope.len());
                    let init = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}var {name}: int = {init};");
                    scope.push(name);
                }
                3..=4 if !scope.is_empty() => {
                    let v = scope[self.rng.below(scope.len() as u64) as usize].clone();
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}{v} = {e};");
                }
                5 if self.cfg.num_globals > 0 => {
                    let g = self.rng.below(self.cfg.num_globals as u64) as usize;
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}g{g} = {e};");
                }
                6 if self.cfg.num_arrays > 0 => {
                    let a = self.rng.below(self.cfg.num_arrays as u64) as usize;
                    let i = self.expr(f, scope, 1);
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}arr{a}[(({i}) % 16 + 16) % 16] = {e};");
                }
                7 if depth > 0 => {
                    let c = self.expr(f, scope, 1);
                    let _ = writeln!(out, "{pad}if {c} {{");
                    let before = scope.len();
                    self.stmts(out, f, scope, n / 2 + 1, depth - 1, indent + 1);
                    scope.truncate(before);
                    let _ = writeln!(out, "{pad}}} else {{");
                    self.stmts(out, f, scope, n / 2, depth - 1, indent + 1);
                    scope.truncate(before);
                    let _ = writeln!(out, "{pad}}}");
                }
                8 if depth > 0 => {
                    // Canonical bounded loop; induction var is reserved (it
                    // is never added to `scope`, so no generated statement
                    // can overwrite it and termination is guaranteed).
                    let lv = format!("L{}", self.loop_counter);
                    self.loop_counter += 1;
                    let bound = self.rng.range_i64(1, 8);
                    let _ = writeln!(out, "{pad}var {lv}: int = 0;");
                    let _ = writeln!(out, "{pad}while {lv} < {bound} {{");
                    let before = scope.len();
                    self.loop_depth += 1;
                    self.stmts(out, f, scope, n / 2 + 1, depth - 1, indent + 1);
                    self.loop_depth -= 1;
                    scope.truncate(before);
                    let _ = writeln!(out, "{pad}  {lv} = {lv} + 1;");
                    let _ = writeln!(out, "{pad}}}");
                }
                _ => {
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}print({e});");
                }
            }
        }
    }
}

/// A call-tree module: `depth` levels with `fanout` callees per level; each
/// function computes with `work` local variables, keeping several live
/// across its calls. Deterministic in shape; useful for allocator
/// throughput and ablation measurements.
pub fn call_tree(depth: usize, fanout: usize, work: usize) -> Module {
    let mut m = Module::new();
    build_tree(&mut m, depth, fanout, work);
    m
}

fn build_tree(m: &mut Module, depth: usize, fanout: usize, work: usize) -> FuncId {
    let children: Vec<FuncId> = if depth == 0 {
        Vec::new()
    } else {
        (0..fanout)
            .map(|_| build_tree(m, depth - 1, fanout, work))
            .collect()
    };
    let name = format!("n{}", m.funcs.len());
    let mut b = FunctionBuilder::new(name);
    let x = b.param("x");
    let locals: Vec<_> = (0..work)
        .map(|i| b.bin(BinOp::Add, x, Operand::Imm(i as i64 + 1)))
        .collect();
    let mut acc = b.copy(x);
    for c in &children {
        let r = b.call(*c, vec![acc.into()]);
        acc = b.bin(BinOp::Add, r, 1);
    }
    // Touch the locals after the calls so they are live across them.
    for l in &locals {
        acc = b.bin(BinOp::Add, acc, *l);
    }
    b.ret(Some(acc.into()));
    m.add_func(b.build())
}

/// Wraps a call-tree root in a `main` that invokes it `iters` times.
pub fn call_tree_program(depth: usize, fanout: usize, work: usize, iters: usize) -> Module {
    let mut m = call_tree(depth, fanout, work);
    let root = FuncId((m.funcs.len() - 1) as u32);
    let mut b = FunctionBuilder::new("main");
    let mut acc = b.copy(0);
    for i in 0..iters {
        let r = b.call(root, vec![Operand::Imm(i as i64)]);
        acc = b.bin(BinOp::Add, acc, r);
    }
    b.print(acc);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    m
}
