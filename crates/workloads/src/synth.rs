//! Synthetic program generators.
//!
//! Three families: random well-formed Mini sources (terminating by
//! construction) for differential fuzzing of the whole pipeline,
//! *shape-calibrated* sources ([`shaped_source`]) that steer the call-graph
//! topology (recursion, fan-out, function pointers, arity spread) to
//! exercise the open/closed classification axis, and parameterized
//! call-tree IR modules for allocator ablations and throughput benchmarks.

use std::fmt::Write as _;

use ipra_callgraph::{CallGraph, Openness, SccInfo};
use ipra_ir::builder::FunctionBuilder;
use ipra_ir::{BinOp, Callee, FuncId, Inst, Module, Operand};

/// A tiny deterministic PRNG (xorshift64* seeded through splitmix64), so
/// the generators need no external crates and produce identical programs
/// for a given seed on every platform.
#[derive(Clone, Debug)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from an arbitrary seed (zero included).
    pub fn new(seed: u64) -> Self {
        // One splitmix64 step scrambles low-entropy seeds and guarantees a
        // non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64Star { state: z | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`). The modulo bias is
    /// irrelevant for program generation.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform value in `lo..hi` (half-open; `lo` when the range is empty).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            lo
        } else {
            lo + self.below((hi - lo) as u64) as i64
        }
    }

    /// Fair coin flip.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Tuning knobs for [`random_source`].
#[derive(Clone, Copy, Debug)]
pub struct SourceConfig {
    /// Number of functions besides `main`.
    pub num_funcs: usize,
    /// Number of global scalars.
    pub num_globals: usize,
    /// Number of global arrays.
    pub num_arrays: usize,
    /// Statements per function body.
    pub stmts_per_func: usize,
    /// Maximum statement nesting depth.
    pub max_depth: usize,
}

impl Default for SourceConfig {
    fn default() -> Self {
        SourceConfig {
            num_funcs: 6,
            num_globals: 4,
            num_arrays: 2,
            stmts_per_func: 8,
            max_depth: 3,
        }
    }
}

/// Generates a random, deterministic, *terminating* Mini program.
///
/// Termination by construction: every loop is a canonical bounded counter
/// loop whose induction variable is written nowhere else, and the call
/// graph is acyclic (functions only call earlier functions).
pub fn random_source(seed: u64, cfg: &SourceConfig) -> String {
    let mut rng = XorShift64Star::new(seed);
    let mut out = String::new();
    let _ = writeln!(out, "// random program, seed {seed}");

    for g in 0..cfg.num_globals {
        let _ = writeln!(out, "global g{g}: int = {};", rng.range_i64(-50, 50));
    }
    for a in 0..cfg.num_arrays {
        let _ = writeln!(out, "global arr{a}: [int; 16];");
    }

    // Fix arities up front so call sites always match.
    let arities: Vec<usize> = (0..cfg.num_funcs).map(|_| rng.below(4) as usize).collect();
    let mut gen = SrcGen {
        rng,
        cfg: *cfg,
        loop_counter: 0,
        arities,
        loop_depth: 0,
    };

    // Functions f0..fN; fK may call f0..f(K-1) (acyclic, so terminating).
    for f in 0..cfg.num_funcs {
        let nparams = gen.arities[f];
        let params: Vec<String> = (0..nparams).map(|i| format!("p{i}")).collect();
        let header: Vec<String> = params.iter().map(|p| format!("{p}: int")).collect();
        let _ = writeln!(out, "fn f{f}({}) -> int {{", header.join(", "));
        let mut scope: Vec<String> = params;
        gen.stmts(
            &mut out,
            f,
            &mut scope,
            cfg.stmts_per_func,
            cfg.max_depth,
            1,
        );
        let _ = writeln!(out, "  return {};", gen.expr(f, &scope, 2));
        let _ = writeln!(out, "}}");
    }

    let _ = writeln!(out, "fn main() {{");
    let mut scope: Vec<String> = Vec::new();
    let n = cfg.num_funcs;
    gen.stmts(
        &mut out,
        n,
        &mut scope,
        cfg.stmts_per_func,
        cfg.max_depth,
        1,
    );
    for f in 0..n {
        let call = gen.call_expr(f, n, &scope, 1);
        let _ = writeln!(out, "  print({call});");
    }
    for g in 0..cfg.num_globals {
        let _ = writeln!(out, "  print(g{g});");
    }
    let _ = writeln!(out, "}}");
    out
}

struct SrcGen {
    rng: XorShift64Star,
    cfg: SourceConfig,
    loop_counter: usize,
    arities: Vec<usize>,
    /// Loop nesting depth at the generation point: calls are only generated
    /// outside loops, so total call counts stay polynomial and the
    /// reference interpreter never exhausts its budget.
    loop_depth: usize,
}

impl SrcGen {
    /// An expression usable inside function `f` (callable: f0..f{f-1}).
    fn expr(&mut self, f: usize, scope: &[String], depth: usize) -> String {
        if depth == 0 {
            return self.atom(scope);
        }
        match self.rng.below(10) {
            0..=3 => {
                let op = ["+", "-", "*", "&", "|", "^"][self.rng.below(6) as usize];
                let l = self.expr(f, scope, depth - 1);
                let r = self.expr(f, scope, depth - 1);
                format!("({l} {op} {r})")
            }
            4 => {
                // Division/remainder by a non-zero constant only.
                let op = if self.rng.coin() { "/" } else { "%" };
                let l = self.expr(f, scope, depth - 1);
                let c = self.rng.range_i64(1, 9);
                format!("({l} {op} {c})")
            }
            5 => {
                let op = ["==", "!=", "<", "<=", ">", ">="][self.rng.below(6) as usize];
                let l = self.expr(f, scope, depth - 1);
                let r = self.expr(f, scope, depth - 1);
                format!("({l} {op} {r})")
            }
            6 if f > 0 && self.loop_depth == 0 => {
                let callee = self.rng.below(f as u64) as usize;
                self.call_expr(callee, f, scope, depth)
            }
            7 if self.cfg.num_arrays > 0 => {
                let a = self.rng.below(self.cfg.num_arrays as u64) as usize;
                let i = self.expr(f, scope, depth - 1);
                format!("arr{a}[(({i}) % 16 + 16) % 16]")
            }
            8 => {
                let inner = self.expr(f, scope, depth - 1);
                format!("(-({inner}))")
            }
            _ => self.atom(scope),
        }
    }

    fn atom(&mut self, scope: &[String]) -> String {
        let choices = scope.len() + self.cfg.num_globals + 1;
        let k = self.rng.below(choices.max(1) as u64) as usize;
        if k < scope.len() {
            scope[k].clone()
        } else if k < scope.len() + self.cfg.num_globals {
            format!("g{}", k - scope.len())
        } else {
            format!("{}", self.rng.range_i64(-99, 100))
        }
    }

    /// A call to `f{callee}` with arguments generated in function `f`'s
    /// scope (argument sub-expressions may themselves call earlier
    /// functions).
    fn call_expr(&mut self, callee: usize, f: usize, scope: &[String], depth: usize) -> String {
        let args: Vec<String> = (0..self.arities[callee])
            .map(|_| self.expr(f, scope, depth.saturating_sub(1)))
            .collect();
        format!("f{callee}({})", args.join(", "))
    }

    fn stmts(
        &mut self,
        out: &mut String,
        f: usize,
        scope: &mut Vec<String>,
        n: usize,
        depth: usize,
        indent: usize,
    ) {
        let pad = "  ".repeat(indent);
        for _ in 0..n {
            match self.rng.below(10) {
                0..=2 => {
                    let name = format!("v{}", scope.len());
                    let init = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}var {name}: int = {init};");
                    scope.push(name);
                }
                3..=4 if !scope.is_empty() => {
                    let v = scope[self.rng.below(scope.len() as u64) as usize].clone();
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}{v} = {e};");
                }
                5 if self.cfg.num_globals > 0 => {
                    let g = self.rng.below(self.cfg.num_globals as u64) as usize;
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}g{g} = {e};");
                }
                6 if self.cfg.num_arrays > 0 => {
                    let a = self.rng.below(self.cfg.num_arrays as u64) as usize;
                    let i = self.expr(f, scope, 1);
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}arr{a}[(({i}) % 16 + 16) % 16] = {e};");
                }
                7 if depth > 0 => {
                    let c = self.expr(f, scope, 1);
                    let _ = writeln!(out, "{pad}if {c} {{");
                    let before = scope.len();
                    self.stmts(out, f, scope, n / 2 + 1, depth - 1, indent + 1);
                    scope.truncate(before);
                    let _ = writeln!(out, "{pad}}} else {{");
                    self.stmts(out, f, scope, n / 2, depth - 1, indent + 1);
                    scope.truncate(before);
                    let _ = writeln!(out, "{pad}}}");
                }
                8 if depth > 0 => {
                    // Canonical bounded loop; induction var is reserved (it
                    // is never added to `scope`, so no generated statement
                    // can overwrite it and termination is guaranteed).
                    let lv = format!("L{}", self.loop_counter);
                    self.loop_counter += 1;
                    let bound = self.rng.range_i64(1, 8);
                    let _ = writeln!(out, "{pad}var {lv}: int = 0;");
                    let _ = writeln!(out, "{pad}while {lv} < {bound} {{");
                    let before = scope.len();
                    self.loop_depth += 1;
                    self.stmts(out, f, scope, n / 2 + 1, depth - 1, indent + 1);
                    self.loop_depth -= 1;
                    scope.truncate(before);
                    let _ = writeln!(out, "{pad}  {lv} = {lv} + 1;");
                    let _ = writeln!(out, "{pad}}}");
                }
                _ => {
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}print({e});");
                }
            }
        }
    }
}

/// A call-tree module: `depth` levels with `fanout` callees per level; each
/// function computes with `work` local variables, keeping several live
/// across its calls. Deterministic in shape; useful for allocator
/// throughput and ablation measurements.
pub fn call_tree(depth: usize, fanout: usize, work: usize) -> Module {
    let mut m = Module::new();
    build_tree(&mut m, depth, fanout, work);
    m
}

fn build_tree(m: &mut Module, depth: usize, fanout: usize, work: usize) -> FuncId {
    let children: Vec<FuncId> = if depth == 0 {
        Vec::new()
    } else {
        (0..fanout)
            .map(|_| build_tree(m, depth - 1, fanout, work))
            .collect()
    };
    let name = format!("n{}", m.funcs.len());
    let mut b = FunctionBuilder::new(name);
    let x = b.param("x");
    let locals: Vec<_> = (0..work)
        .map(|i| b.bin(BinOp::Add, x, Operand::Imm(i as i64 + 1)))
        .collect();
    let mut acc = b.copy(x);
    for c in &children {
        let r = b.call(*c, vec![acc.into()]);
        acc = b.bin(BinOp::Add, r, 1);
    }
    // Touch the locals after the calls so they are live across them.
    for l in &locals {
        acc = b.bin(BinOp::Add, acc, *l);
    }
    b.ret(Some(acc.into()));
    m.add_func(b.build())
}

// ---------------------------------------------------------------------------
// Shape-calibrated generation.
//
// `random_source` above only emits acyclic direct call graphs, which makes
// every generated procedure (except `main`) *closed* under the paper's §3
// classification. The shaped generator steers topology so the other half of
// the axis — recursion and address-taken/indirect-call targets, which force
// the default (open) linkage — is exercised at scale.
//
// Termination by construction, per shape:
//
// - Acyclic / WideFanout / VariedArity: functions only call earlier
//   functions, exactly like `random_source`.
// - DeepRecursion: *every* function takes a leading `fuel: int` parameter;
//   every call (any callee, including self and later functions — so direct
//   and mutual recursion both occur) passes `fuel - 1` and sits behind an
//   `if fuel > 0` guard. The call tree therefore has depth at most the
//   initial fuel, regardless of topology.
// - FnPtrHeavy: direct calls go to earlier functions; function-pointer
//   values only ever hold addresses of functions *earlier than the function
//   whose body performs the indirect call*, so indirect edges respect the
//   same acyclic order.

/// Call-graph shape class of a generated program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ShapeClass {
    /// Acyclic direct calls only (the `random_source` topology): every
    /// non-`main` procedure classifies closed.
    Acyclic,
    /// Fuel-bounded direct and mutual recursion: cycles in the call graph
    /// force the `Recursive` open reason.
    DeepRecursion,
    /// Many functions, each calling several earlier ones: stresses wide
    /// summary propagation and whole-tree usage masks.
    WideFanout,
    /// Address-taken functions, fnptr locals and parameters, indirect call
    /// sites: forces the `AddressTaken` open reason.
    FnPtrHeavy,
    /// Arities 0..=8 (past the parameter-register file): stresses custom
    /// parameter-register bindings and stack argument homes.
    VariedArity,
}

impl ShapeClass {
    /// All shape classes, in canonical sweep order.
    pub const ALL: [ShapeClass; 5] = [
        ShapeClass::Acyclic,
        ShapeClass::DeepRecursion,
        ShapeClass::WideFanout,
        ShapeClass::FnPtrHeavy,
        ShapeClass::VariedArity,
    ];

    /// Stable lowercase name (seed-corpus file names, CLI `--shape`).
    pub fn name(self) -> &'static str {
        match self {
            ShapeClass::Acyclic => "acyclic",
            ShapeClass::DeepRecursion => "recursive",
            ShapeClass::WideFanout => "fanout",
            ShapeClass::FnPtrHeavy => "fnptr",
            ShapeClass::VariedArity => "arity",
        }
    }

    /// Parses [`ShapeClass::name`] back.
    pub fn by_name(name: &str) -> Option<ShapeClass> {
        ShapeClass::ALL.iter().copied().find(|c| c.name() == name)
    }
}

impl std::fmt::Display for ShapeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs for [`shaped_source`]: a [`ShapeClass`] plus the base
/// volume knobs and the recursion budget.
#[derive(Clone, Copy, Debug)]
pub struct ShapeConfig {
    /// Call-graph topology to generate.
    pub class: ShapeClass,
    /// Base volume knobs (function count, statement count, nesting).
    pub base: SourceConfig,
    /// Initial fuel threaded through [`ShapeClass::DeepRecursion`]
    /// programs: recursion depth is bounded by this value.
    pub fuel: i64,
}

impl ShapeConfig {
    /// The calibrated default configuration for a shape class.
    pub fn new(class: ShapeClass) -> ShapeConfig {
        let base = match class {
            ShapeClass::Acyclic => SourceConfig::default(),
            ShapeClass::DeepRecursion => SourceConfig {
                num_funcs: 5,
                num_globals: 3,
                num_arrays: 1,
                stmts_per_func: 6,
                max_depth: 2,
            },
            ShapeClass::WideFanout => SourceConfig {
                num_funcs: 14,
                num_globals: 5,
                num_arrays: 1,
                stmts_per_func: 5,
                max_depth: 2,
            },
            ShapeClass::FnPtrHeavy => SourceConfig {
                num_funcs: 8,
                num_globals: 4,
                num_arrays: 1,
                stmts_per_func: 7,
                max_depth: 2,
            },
            ShapeClass::VariedArity => SourceConfig {
                num_funcs: 9,
                num_globals: 3,
                num_arrays: 1,
                stmts_per_func: 6,
                max_depth: 2,
            },
        };
        ShapeConfig {
            class,
            base,
            fuel: 9,
        }
    }
}

/// Generates a random, deterministic, terminating Mini program whose
/// call-graph topology follows `cfg.class` (see the module comment for the
/// per-shape termination argument).
pub fn shaped_source(seed: u64, cfg: &ShapeConfig) -> String {
    let mut rng = XorShift64Star::new(seed ^ 0xC0DE_5EED_0000 ^ (cfg.class as u64) << 56);
    let base = cfg.base;
    let mut out = String::new();
    let _ = writeln!(out, "// shaped program: {} seed {seed}", cfg.class);

    for g in 0..base.num_globals {
        let _ = writeln!(out, "global g{g}: int = {};", rng.range_i64(-50, 50));
    }
    for a in 0..base.num_arrays {
        let _ = writeln!(out, "global arr{a}: [int; 16];");
    }

    let fueled = cfg.class == ShapeClass::DeepRecursion;
    // Non-fuel arities; the fuel parameter is extra and implicit.
    let max_arity = match cfg.class {
        ShapeClass::VariedArity => 9, // 0..=8
        _ => 4,                       // 0..=3
    };
    let arities: Vec<usize> = (0..base.num_funcs)
        .map(|f| {
            if cfg.class == ShapeClass::FnPtrHeavy && f == 0 {
                // Fixed arity-1 anchor: fnptr parameters always have an
                // arity-1 target available (see `fn_param_target`).
                1
            } else {
                rng.below(max_arity) as usize
            }
        })
        .collect();
    // Which functions take a trailing fnptr parameter (FnPtrHeavy only;
    // f0 is the universal target and must not require one).
    let fnptr_param: Vec<bool> = (0..base.num_funcs)
        .map(|f| cfg.class == ShapeClass::FnPtrHeavy && f > 0 && rng.below(3) == 0)
        .collect();

    let mut gen = ShapeGen {
        rng,
        cfg: *cfg,
        base,
        arities,
        fnptr_param,
        fueled,
        loop_counter: 0,
        loop_depth: 0,
        var_counter: 0,
    };

    for f in 0..base.num_funcs {
        let mut header: Vec<String> = Vec::new();
        if fueled {
            header.push("fuel: int".into());
        }
        let mut scope: Vec<String> = Vec::new();
        for i in 0..gen.arities[f] {
            header.push(format!("p{i}: int"));
            scope.push(format!("p{i}"));
        }
        let mut fn_scope: Vec<FnPtrVar> = Vec::new();
        if gen.fnptr_param[f] {
            header.push("fp: fnptr".into());
            fn_scope.push(FnPtrVar {
                name: "fp".into(),
                arity: gen.arities[0],
            });
        }
        let _ = writeln!(out, "fn f{f}({}) -> int {{", header.join(", "));
        gen.stmts(
            &mut out,
            f,
            &mut scope,
            &mut fn_scope,
            base.stmts_per_func,
            base.max_depth,
            1,
        );
        let _ = writeln!(out, "  return {};", gen.expr(f, &scope, 2));
        let _ = writeln!(out, "}}");
    }

    let _ = writeln!(out, "fn main() {{");
    let n = base.num_funcs;
    let mut scope: Vec<String> = Vec::new();
    let mut fn_scope: Vec<FnPtrVar> = Vec::new();
    gen.stmts(
        &mut out,
        n,
        &mut scope,
        &mut fn_scope,
        base.stmts_per_func,
        base.max_depth,
        1,
    );
    if cfg.class == ShapeClass::FnPtrHeavy {
        // Every fnptr-heavy module has at least one address-taken
        // function and one indirect call site, whatever the seed — the
        // per-module calibration guarantee the classification tests rely
        // on. `f0` has fixed arity 1 (see above).
        let _ = writeln!(out, "  var q_main: fnptr = &f0;");
        let _ = writeln!(out, "  print(q_main({}));", gen.rng.range_i64(-9, 10));
    }
    // Every function is reachable from main, so no shape is accidentally
    // trivial: summaries of each are consulted somewhere.
    for f in 0..n {
        let call = gen.direct_call(f, n, &scope, 1);
        let _ = writeln!(out, "  print({call});");
    }
    for g in 0..base.num_globals {
        let _ = writeln!(out, "  print(g{g});");
    }
    let _ = writeln!(out, "}}");
    out
}

/// An in-scope `fnptr` variable (or parameter) and the non-fuel arity of
/// every function whose address it can hold.
#[derive(Clone, Debug)]
struct FnPtrVar {
    name: String,
    arity: usize,
}

struct ShapeGen {
    rng: XorShift64Star,
    cfg: ShapeConfig,
    base: SourceConfig,
    arities: Vec<usize>,
    fnptr_param: Vec<bool>,
    fueled: bool,
    loop_counter: usize,
    loop_depth: usize,
    /// Global variable counter: inner-scope variables stay unique even
    /// after outer scopes truncate (unlike `SrcGen`, shapes reuse names
    /// across sibling scopes otherwise, because fnptr vars share the pool).
    var_counter: usize,
}

impl ShapeGen {
    /// Side-effect-free expression usable inside function `f` (`f ==
    /// num_funcs` means `main`). Calls are *never* generated in expression
    /// position by the shaped generator: call topology is controlled
    /// entirely by the statement layer.
    fn expr(&mut self, f: usize, scope: &[String], depth: usize) -> String {
        let _ = f;
        if depth == 0 {
            return self.atom(scope);
        }
        match self.rng.below(10) {
            0..=3 => {
                let op = ["+", "-", "*", "&", "|", "^"][self.rng.below(6) as usize];
                let l = self.expr(f, scope, depth - 1);
                let r = self.expr(f, scope, depth - 1);
                format!("({l} {op} {r})")
            }
            4 => {
                let op = if self.rng.coin() { "/" } else { "%" };
                let l = self.expr(f, scope, depth - 1);
                let c = self.rng.range_i64(1, 9);
                format!("({l} {op} {c})")
            }
            5 => {
                let op = ["==", "!=", "<", "<=", ">", ">="][self.rng.below(6) as usize];
                let l = self.expr(f, scope, depth - 1);
                let r = self.expr(f, scope, depth - 1);
                format!("({l} {op} {r})")
            }
            6 | 7 if self.base.num_arrays > 0 => {
                let a = self.rng.below(self.base.num_arrays as u64) as usize;
                let i = self.expr(f, scope, depth - 1);
                format!("arr{a}[(({i}) % 16 + 16) % 16]")
            }
            8 => {
                let inner = self.expr(f, scope, depth - 1);
                format!("(-({inner}))")
            }
            _ => self.atom(scope),
        }
    }

    fn atom(&mut self, scope: &[String]) -> String {
        let choices = scope.len() + self.base.num_globals + 1;
        let k = self.rng.below(choices.max(1) as u64) as usize;
        if k < scope.len() {
            scope[k].clone()
        } else if k < scope.len() + self.base.num_globals {
            format!("g{}", k - scope.len())
        } else {
            format!("{}", self.rng.range_i64(-99, 100))
        }
    }

    /// Argument list for a call to `f{callee}` made from inside function
    /// `f` (argument expressions never contain calls).
    fn args_for(&mut self, callee: usize, f: usize, scope: &[String], fuel_expr: &str) -> String {
        let mut args: Vec<String> = Vec::new();
        if self.fueled {
            args.push(fuel_expr.to_string());
        }
        for _ in 0..self.arities[callee] {
            args.push(self.expr(f, scope, 1));
        }
        if self.fnptr_param[callee] {
            // The callee will *call* this pointer, so its target must be
            // earlier than the callee itself to keep indirect edges
            // acyclic; `fn_param_target` picks an arity-matched one.
            args.push(format!("&f{}", self.fn_param_target(callee)));
        }
        args.join(", ")
    }

    /// A function earlier than `callee` whose non-fuel arity matches the
    /// fnptr-parameter convention (the arity of `f0`). Indirect calls pass
    /// int arguments only, so targets must be addressable (no fnptr param
    /// of their own).
    fn fn_param_target(&mut self, callee: usize) -> usize {
        let want = self.arities[0];
        let candidates: Vec<usize> = (0..callee)
            .filter(|&j| self.arities[j] == want && !self.fnptr_param[j])
            .collect();
        candidates[self.rng.below(candidates.len() as u64) as usize]
    }

    /// A direct call expression to `f{callee}` from function `f`. Callers
    /// must ensure the edge is legal for the shape (acyclic shapes:
    /// `callee < f`; fueled shapes: any callee, but the caller wraps the
    /// call in an `if fuel > 0` guard and we pass `fuel - 1`).
    fn direct_call(&mut self, callee: usize, f: usize, scope: &[String], _depth: usize) -> String {
        let fuel_expr = if f == self.base.num_funcs {
            // Calls from `main` start the budget.
            self.cfg.fuel.to_string()
        } else {
            "(fuel - 1)".to_string()
        };
        let args = self.args_for(callee, f, scope, &fuel_expr);
        format!("f{callee}({args})")
    }

    #[allow(clippy::too_many_arguments)]
    fn stmts(
        &mut self,
        out: &mut String,
        f: usize,
        scope: &mut Vec<String>,
        fn_scope: &mut Vec<FnPtrVar>,
        n: usize,
        depth: usize,
        indent: usize,
    ) {
        let pad = "  ".repeat(indent);
        let in_main = f == self.base.num_funcs;
        for _ in 0..n {
            match self.rng.below(14) {
                0..=2 => {
                    let name = format!("v{}", self.var_counter);
                    self.var_counter += 1;
                    let init = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}var {name}: int = {init};");
                    scope.push(name);
                }
                3 if !scope.is_empty() => {
                    let v = scope[self.rng.below(scope.len() as u64) as usize].clone();
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}{v} = {e};");
                }
                4 if self.base.num_globals > 0 => {
                    let g = self.rng.below(self.base.num_globals as u64) as usize;
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}g{g} = {e};");
                }
                5 if self.base.num_arrays > 0 => {
                    let a = self.rng.below(self.base.num_arrays as u64) as usize;
                    let i = self.expr(f, scope, 1);
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}arr{a}[(({i}) % 16 + 16) % 16] = {e};");
                }
                6 if depth > 0 => {
                    let c = self.expr(f, scope, 1);
                    let _ = writeln!(out, "{pad}if {c} {{");
                    let (bs, bf) = (scope.len(), fn_scope.len());
                    self.stmts(out, f, scope, fn_scope, n / 2 + 1, depth - 1, indent + 1);
                    scope.truncate(bs);
                    fn_scope.truncate(bf);
                    let _ = writeln!(out, "{pad}}} else {{");
                    self.stmts(out, f, scope, fn_scope, n / 2, depth - 1, indent + 1);
                    scope.truncate(bs);
                    fn_scope.truncate(bf);
                    let _ = writeln!(out, "{pad}}}");
                }
                7 if depth > 0 => {
                    // Canonical bounded loop (see `SrcGen::stmts`).
                    let lv = format!("L{}", self.loop_counter);
                    self.loop_counter += 1;
                    let bound = self.rng.range_i64(1, 8);
                    let _ = writeln!(out, "{pad}var {lv}: int = 0;");
                    let _ = writeln!(out, "{pad}while {lv} < {bound} {{");
                    let (bs, bf) = (scope.len(), fn_scope.len());
                    self.loop_depth += 1;
                    self.stmts(out, f, scope, fn_scope, n / 2 + 1, depth - 1, indent + 1);
                    self.loop_depth -= 1;
                    scope.truncate(bs);
                    fn_scope.truncate(bf);
                    let _ = writeln!(out, "{pad}  {lv} = {lv} + 1;");
                    let _ = writeln!(out, "{pad}}}");
                }
                // Call statements: the only place shaped programs call.
                8..=10 if self.loop_depth == 0 => {
                    self.call_stmt(out, f, scope, fn_scope, &pad, in_main);
                }
                // fnptr declarations and retargeting (FnPtrHeavy only).
                11 | 12 if self.cfg.class == ShapeClass::FnPtrHeavy && f > 0 && self.rng.coin() => {
                    self.fnptr_stmt(out, f, scope, fn_scope, &pad);
                }
                _ => {
                    let e = self.expr(f, scope, 2);
                    let _ = writeln!(out, "{pad}print({e});");
                }
            }
        }
    }

    /// Emits one call statement appropriate for the shape: a guarded
    /// fueled call (DeepRecursion), an indirect call through an in-scope
    /// pointer (FnPtrHeavy, sometimes), or a plain acyclic direct call.
    fn call_stmt(
        &mut self,
        out: &mut String,
        f: usize,
        scope: &mut Vec<String>,
        fn_scope: &[FnPtrVar],
        pad: &str,
        in_main: bool,
    ) {
        let nfuncs = self.base.num_funcs;
        if self.fueled && !in_main {
            // Any callee is legal behind the fuel guard; self and later
            // targets create direct/mutual recursion.
            let callee = self.rng.below(nfuncs as u64) as usize;
            let name = format!("v{}", self.var_counter);
            self.var_counter += 1;
            let init = self.rng.range_i64(-9, 10);
            let _ = writeln!(out, "{pad}var {name}: int = {init};");
            let call = self.direct_call(callee, f, scope, 1);
            let _ = writeln!(out, "{pad}if fuel > 0 {{ {name} = {call}; }}");
            scope.push(name);
            return;
        }
        if self.cfg.class == ShapeClass::FnPtrHeavy && !fn_scope.is_empty() && self.rng.coin() {
            // Indirect call through a pointer already in scope.
            let p = &fn_scope[self.rng.below(fn_scope.len() as u64) as usize];
            let (pname, arity) = (p.name.clone(), p.arity);
            let mut args: Vec<String> = Vec::new();
            for _ in 0..arity {
                args.push(self.expr(f, scope, 1));
            }
            let name = format!("v{}", self.var_counter);
            self.var_counter += 1;
            let _ = writeln!(out, "{pad}var {name}: int = {pname}({});", args.join(", "));
            scope.push(name);
            return;
        }
        if f == 0 && !in_main {
            // f0 has no earlier function to call.
            let e = self.expr(f, scope, 2);
            let _ = writeln!(out, "{pad}print({e});");
            return;
        }
        // Plain acyclic direct call to an earlier function. WideFanout
        // spreads targets uniformly; other shapes favor near neighbors.
        let limit = if in_main { nfuncs } else { f };
        let callee = self.rng.below(limit as u64) as usize;
        let name = format!("v{}", self.var_counter);
        self.var_counter += 1;
        let call = self.direct_call(callee, f, scope, 1);
        let _ = writeln!(out, "{pad}var {name}: int = {call};");
        scope.push(name);
    }

    /// Declares a fresh fnptr variable aimed at an earlier function, or
    /// conditionally retargets an existing one (same arity, still earlier,
    /// so the acyclicity argument holds on every path).
    fn fnptr_stmt(
        &mut self,
        out: &mut String,
        f: usize,
        scope: &[String],
        fn_scope: &mut Vec<FnPtrVar>,
        pad: &str,
    ) {
        if !fn_scope.is_empty() && self.rng.coin() {
            let i = self.rng.below(fn_scope.len() as u64) as usize;
            let (pname, arity) = (fn_scope[i].name.clone(), fn_scope[i].arity);
            let same: Vec<usize> = (0..f)
                .filter(|&j| self.arities[j] == arity && !self.fnptr_param[j])
                .collect();
            if !same.is_empty() {
                let target = same[self.rng.below(same.len() as u64) as usize];
                let cond = self.expr(f, scope, 1);
                let _ = writeln!(out, "{pad}if {cond} {{ {pname} = &f{target}; }}");
                return;
            }
        }
        // Indirect calls pass int arguments only, so a pointer may only
        // ever hold a function without a fnptr parameter of its own.
        let addressable: Vec<usize> = (0..f).filter(|&j| !self.fnptr_param[j]).collect();
        let target = addressable[self.rng.below(addressable.len() as u64) as usize];
        let name = format!("q{}", self.var_counter);
        self.var_counter += 1;
        let _ = writeln!(out, "{pad}var {name}: fnptr = &f{target};");
        fn_scope.push(FnPtrVar {
            name,
            arity: self.arities[target],
        });
    }
}

/// Static call-graph shape statistics of one module — the calibration
/// evidence that a corpus actually exercises the open/closed axis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShapeStats {
    /// Total functions (including `main`).
    pub funcs: usize,
    /// Procedures classified open (any §3 reason).
    pub open_funcs: usize,
    /// Procedures classified closed.
    pub closed_funcs: usize,
    /// Procedures on a call-graph cycle (direct or mutual recursion).
    pub recursive_funcs: usize,
    /// Procedures whose address is taken.
    pub address_taken_funcs: usize,
    /// Indirect call sites.
    pub indirect_sites: usize,
    /// Direct call sites.
    pub direct_sites: usize,
    /// Depth of the SCC condensation (number of wave levels): the static
    /// call-depth bound for acyclic programs, a lower bound otherwise.
    pub max_call_depth: usize,
    /// Largest declared parameter count.
    pub max_arity: usize,
}

impl ShapeStats {
    /// Computes the statistics for `module`.
    pub fn collect(module: &Module) -> ShapeStats {
        let cg = CallGraph::build(module);
        let scc = SccInfo::compute(&cg);
        let openness = Openness::compute(module, &cg, &scc);
        let mut s = ShapeStats {
            funcs: module.funcs.len(),
            max_call_depth: scc.levels(&cg).len(),
            ..ShapeStats::default()
        };
        for (id, f) in module.funcs.iter() {
            if openness.is_open(id) {
                s.open_funcs += 1;
            } else {
                s.closed_funcs += 1;
            }
            if scc.on_cycle[id.index()] {
                s.recursive_funcs += 1;
            }
            if cg.address_taken[id.index()] {
                s.address_taken_funcs += 1;
            }
            s.max_arity = s.max_arity.max(f.params.len());
            for (_, b) in f.blocks.iter() {
                for inst in &b.insts {
                    if let Inst::Call { callee, .. } = inst {
                        match callee {
                            Callee::Direct(_) => s.direct_sites += 1,
                            Callee::Indirect(_) => s.indirect_sites += 1,
                        }
                    }
                }
            }
        }
        s
    }

    /// Reports the statistics to the `ipra-obs` sink, making corpus
    /// calibration assertable from a trace.
    pub fn record(&self) {
        ipra_obs::counter("shape.funcs", self.funcs as u64);
        ipra_obs::counter("shape.open_funcs", self.open_funcs as u64);
        ipra_obs::counter("shape.closed_funcs", self.closed_funcs as u64);
        ipra_obs::counter("shape.recursive_funcs", self.recursive_funcs as u64);
        ipra_obs::counter("shape.address_taken_funcs", self.address_taken_funcs as u64);
        ipra_obs::counter("shape.indirect_sites", self.indirect_sites as u64);
        ipra_obs::counter("shape.direct_sites", self.direct_sites as u64);
        ipra_obs::counter("shape.max_call_depth", self.max_call_depth as u64);
        ipra_obs::counter("shape.max_arity", self.max_arity as u64);
    }

    /// Accumulates another module's statistics into a corpus aggregate
    /// (`max_*` fields take the maximum, counts add).
    pub fn absorb(&mut self, other: &ShapeStats) {
        self.funcs += other.funcs;
        self.open_funcs += other.open_funcs;
        self.closed_funcs += other.closed_funcs;
        self.recursive_funcs += other.recursive_funcs;
        self.address_taken_funcs += other.address_taken_funcs;
        self.indirect_sites += other.indirect_sites;
        self.direct_sites += other.direct_sites;
        self.max_call_depth = self.max_call_depth.max(other.max_call_depth);
        self.max_arity = self.max_arity.max(other.max_arity);
    }
}

/// Wraps a call-tree root in a `main` that invokes it `iters` times.
pub fn call_tree_program(depth: usize, fanout: usize, work: usize, iters: usize) -> Module {
    let mut m = call_tree(depth, fanout, work);
    let root = FuncId((m.funcs.len() - 1) as u32);
    let mut b = FunctionBuilder::new("main");
    let mut acc = b.copy(0);
    for i in 0..iters {
        let r = b.call(root, vec![Operand::Imm(i as i64)]);
        acc = b.bin(BinOp::Add, acc, r);
    }
    b.print(acc);
    b.ret(None);
    let main = m.add_func(b.build());
    m.main = Some(main);
    m
}

#[cfg(test)]
mod shape_tests {
    use super::*;

    /// Every shape class, across a seed range, must produce a program that
    /// the frontend accepts and the interpreter finishes under the default
    /// fuel — the termination-by-construction argument, checked.
    #[test]
    fn shaped_sources_compile_and_terminate() {
        for class in ShapeClass::ALL {
            let cfg = ShapeConfig::new(class);
            for seed in 0..12u64 {
                let src = shaped_source(seed, &cfg);
                let module = ipra_frontend::compile(&src)
                    .unwrap_or_else(|e| panic!("{class} seed {seed}: {e}\n{src}"));
                ipra_ir::interp::run_module(&module)
                    .unwrap_or_else(|t| panic!("{class} seed {seed} trapped: {t:?}\n{src}"));
            }
        }
    }

    #[test]
    fn shaped_source_is_deterministic() {
        for class in ShapeClass::ALL {
            let cfg = ShapeConfig::new(class);
            assert_eq!(shaped_source(7, &cfg), shaped_source(7, &cfg));
        }
    }

    #[test]
    fn shape_class_names_round_trip() {
        for class in ShapeClass::ALL {
            assert_eq!(ShapeClass::by_name(class.name()), Some(class));
        }
        assert_eq!(ShapeClass::by_name("bogus"), None);
    }

    fn stats_over(class: ShapeClass, seeds: std::ops::Range<u64>) -> ShapeStats {
        let cfg = ShapeConfig::new(class);
        let mut agg = ShapeStats::default();
        for seed in seeds {
            let module = ipra_frontend::compile(&shaped_source(seed, &cfg)).unwrap();
            agg.absorb(&ShapeStats::collect(&module));
        }
        agg
    }

    /// Acyclic shapes must never put a procedure on a call-graph cycle or
    /// take an address; recursion shapes must do the former, fnptr shapes
    /// the latter (with real indirect call sites), at corpus scale.
    #[test]
    fn shape_classes_hit_their_topology_targets() {
        let acyclic = stats_over(ShapeClass::Acyclic, 0..10);
        assert_eq!(acyclic.recursive_funcs, 0);
        assert_eq!(acyclic.indirect_sites, 0);
        assert!(
            acyclic.closed_funcs > 0,
            "acyclic corpora have closed procs"
        );

        let rec = stats_over(ShapeClass::DeepRecursion, 0..10);
        assert!(
            rec.recursive_funcs > 0,
            "recursion corpora must have cycles"
        );

        let fnptr = stats_over(ShapeClass::FnPtrHeavy, 0..10);
        assert!(
            fnptr.address_taken_funcs > 0,
            "fnptr corpora take addresses"
        );
        assert!(fnptr.indirect_sites > 0, "fnptr corpora call indirectly");
        assert!(
            fnptr.open_funcs > fnptr.funcs / 10,
            "address-taking must force open procedures"
        );

        let arity = stats_over(ShapeClass::VariedArity, 0..10);
        assert!(
            arity.max_arity >= 6,
            "arity corpora exceed the register file"
        );
    }

    /// Shape stats flow through the `ipra-obs` counter sink.
    #[test]
    fn shape_stats_are_recorded_as_counters() {
        let cfg = ShapeConfig::new(ShapeClass::FnPtrHeavy);
        let module = ipra_frontend::compile(&shaped_source(3, &cfg)).unwrap();
        let stats = ShapeStats::collect(&module);

        ipra_obs::enable();
        stats.record();
        let trace = ipra_obs::disable();
        assert_eq!(trace.counter_total("", "shape.funcs"), stats.funcs as u64);
        assert_eq!(
            trace.counter_total("", "shape.open_funcs"),
            stats.open_funcs as u64
        );
    }
}
