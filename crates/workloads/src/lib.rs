//! # ipra-workloads — the benchmark suite
//!
//! Mini-language analogs of the 13 programs in the paper's Appendix, in the
//! same order and of matching *kind* (game search, backtracking, string
//! manipulation, diffing, a synthetic mix, the Stanford kernels, pretty
//! printing, pattern scanning, line breaking and three compiler passes),
//! plus synthetic program generators for fuzzing and ablations.
//!
//! ```
//! let w = ipra_workloads::by_name("nim").unwrap();
//! let module = ipra_workloads::compile_workload(w).unwrap();
//! assert!(module.main.is_some());
//! ```

#![warn(missing_docs)]

pub mod reduce;
pub mod synth;

use ipra_frontend::CompileError;
use ipra_ir::Module;

/// One benchmark program.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Short name (matches the paper's Table 1 rows).
    pub name: &'static str,
    /// What the paper's original was.
    pub paper_description: &'static str,
    /// What our analog does.
    pub analog_description: &'static str,
    /// Mini source text.
    pub source: &'static str,
}

macro_rules! workload {
    ($name:literal, $paper:literal, $analog:literal) => {
        Workload {
            name: $name,
            paper_description: $paper,
            analog_description: $analog,
            source: include_str!(concat!("../programs/", $name, ".mini")),
        }
    };
}

/// All 13 workloads, in the paper's Table 1 order (increasing size).
pub fn all() -> Vec<Workload> {
    vec![
        workload!(
            "nim",
            "a program to play the game of Nim",
            "memoized minimax over three Nim heaps plus optimal-play games"
        ),
        workload!(
            "map",
            "a program to find a 4-coloring for a map",
            "backtracking 4-coloring of a 14-region map, counting solutions"
        ),
        workload!(
            "calcc",
            "manipulates dynamic and variable-length strings",
            "length-prefixed strings in a pooled heap: format/concat/reverse/compare/hash"
        ),
        workload!(
            "diff",
            "the UNIX file comparison utility",
            "LCS dynamic program plus hunk walk over two mutated pseudo-files"
        ),
        workload!(
            "dhrystone",
            "a synthetic benchmark by Reinhold Weicker",
            "the classic proc/func call mix over global records, arrays and strings"
        ),
        workload!(
            "stanford",
            "a benchmark suite collected by John Hennessy",
            "Perm, Towers, Queens, Intmm, Bubble, Quick and Fib kernels"
        ),
        workload!(
            "pf",
            "a Pascal pretty-printer written by Larry Weber",
            "recursive-descent pretty-printing of a generated block-structured token stream"
        ),
        workload!(
            "awk",
            "the Awk pattern processing and scanning utility",
            "regex-lite matching (literal/./*) over generated text lines with field actions"
        ),
        workload!(
            "tex",
            "virtex from the TeX typesetting package",
            "Knuth-Plass style optimal line breaking plus greedy comparison over paragraphs"
        ),
        workload!(
            "ccom",
            "first pass of the MIPS C compiler",
            "expression parser, stack-machine code generator, constant folder and VM"
        ),
        workload!(
            "as1",
            "the MIPS assembler/reorganizer",
            "two-pass assembler with hashed symbol table and branch delay-slot filling"
        ),
        workload!(
            "upas",
            "first pass of the MIPS Pascal compiler",
            "Pascal-flavoured declaration/statement parser with scoped symbol table and type checks"
        ),
        workload!(
            "uopt",
            "the MIPS Ucode global optimizer",
            "triple-IR optimizer: constant folding, copy propagation, CSE and mark-sweep DCE"
        ),
    ]
}

/// Finds a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// Compiles a workload's Mini source into an IR module.
///
/// # Errors
///
/// Propagates front-end errors (the bundled sources must always compile; a
/// failure indicates a build problem).
pub fn compile_workload(w: Workload) -> Result<Module, CompileError> {
    ipra_frontend::compile(w.source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::interp::{run_module_with, InterpOptions};

    #[test]
    fn thirteen_workloads_in_paper_order() {
        let names: Vec<_> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "nim",
                "map",
                "calcc",
                "diff",
                "dhrystone",
                "stanford",
                "pf",
                "awk",
                "tex",
                "ccom",
                "as1",
                "upas",
                "uopt"
            ]
        );
    }

    #[test]
    fn every_workload_compiles_verifies_and_runs() {
        for w in all() {
            let m =
                compile_workload(w).unwrap_or_else(|e| panic!("[{}] compile error: {e}", w.name));
            ipra_ir::verify::verify_module(&m)
                .unwrap_or_else(|e| panic!("[{}] verify: {e:?}", w.name));
            let opts = InterpOptions {
                fuel: 2_000_000_000,
                max_depth: 20_000,
            };
            let r =
                run_module_with(&m, opts).unwrap_or_else(|t| panic!("[{}] trapped: {t}", w.name));
            assert!(!r.output.is_empty(), "[{}] produced no output", w.name);
            assert!(
                r.calls_executed >= 50,
                "[{}] not call-intensive enough: {} calls",
                w.name,
                r.calls_executed
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for w in ["nim", "ccom", "uopt"] {
            let m = compile_workload(by_name(w).unwrap()).unwrap();
            let a = ipra_ir::interp::run_module(&m).unwrap();
            let b = ipra_ir::interp::run_module(&m).unwrap();
            assert_eq!(a.output, b.output, "[{w}] must be deterministic");
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("tex").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn random_sources_compile_and_run() {
        for seed in 0..20 {
            let src = synth::random_source(seed, &synth::SourceConfig::default());
            let m = ipra_frontend::compile(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: compile error {e}\n{src}"));
            ipra_ir::verify::verify_module(&m).unwrap();
            let r = ipra_ir::interp::run_module(&m)
                .unwrap_or_else(|t| panic!("seed {seed}: trap {t}\n{src}"));
            assert!(!r.output.is_empty());
        }
    }

    #[test]
    fn call_tree_program_runs() {
        let m = synth::call_tree_program(3, 2, 4, 5);
        ipra_ir::verify::verify_module(&m).unwrap();
        let r = ipra_ir::interp::run_module(&m).unwrap();
        assert_eq!(r.output.len(), 1);
        assert!(
            r.calls_executed >= 5 * (2u64.pow(4) - 1) / 2,
            "full tree visited"
        );
    }
}
