//! Delta-debugging reducer for failing Mini sources.
//!
//! Given a source that makes some *predicate* true (typically "this seed
//! still fails the differential check"), [`reduce`] shrinks it while the
//! predicate keeps holding, in ever finer passes:
//!
//! 1. drop whole functions (callees first — they are declared earlier),
//! 2. replace function bodies with a bare `return 0;`,
//! 3. drop globals,
//! 4. drop statements (preorder, inner blocks included) and flatten
//!    `if`/`while` bodies into their parent block,
//! 5. simplify expressions: replace an operand with one of its children
//!    or with a literal `0`.
//!
//! Candidates are produced by mutating the parsed AST and re-rendering
//! with a canonical pretty-printer, so every candidate is syntactically
//! well-formed; *semantic* validity (a dropped function may still be
//! called) is left to the predicate, which simply rejects such
//! candidates. Passes repeat until a full round makes no progress, which
//! makes the result 1-minimal with respect to the transformations above.

use ipra_frontend::ast::{BinAst, Expr, FuncDecl, LValue, Program, Stmt, Ty};
use ipra_frontend::parser;
use std::fmt::Write as _;

/// Why reduction could not start.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReduceError {
    /// The original source does not parse, so there is no AST to shrink.
    OriginalDoesNotParse(String),
    /// The predicate does not hold on the (re-rendered) original, so
    /// there is nothing to preserve while shrinking.
    NotReproducible,
}

impl std::fmt::Display for ReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceError::OriginalDoesNotParse(e) => {
                write!(f, "original source does not parse: {e}")
            }
            ReduceError::NotReproducible => {
                write!(f, "predicate does not hold on the original source")
            }
        }
    }
}

impl std::error::Error for ReduceError {}

/// Reduction bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ReduceStats {
    /// Candidates handed to the predicate.
    pub tested: usize,
    /// Candidates the predicate accepted (shrink steps taken).
    pub accepted: usize,
    /// Non-empty lines of the re-rendered original.
    pub initial_lines: usize,
    /// Non-empty lines of the result.
    pub final_lines: usize,
}

/// Reducer configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReduceOptions {
    /// Upper bound on predicate invocations; reduction stops (still
    /// returning the best candidate so far) when exhausted. Differential
    /// predicates cost a full compile sweep each, so unbounded runs can
    /// be slow.
    pub max_tests: usize,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        ReduceOptions { max_tests: 20_000 }
    }
}

/// Shrinks `source` while `predicate` keeps returning `true`.
///
/// The predicate sees complete candidate sources. It must return `true`
/// exactly when the failure being chased still reproduces — checking
/// failure *identity* (same config, same kind), not just "anything went
/// wrong", or the reducer will happily walk to an unrelated failure.
///
/// # Errors
///
/// See [`ReduceError`].
pub fn reduce(
    source: &str,
    mut predicate: impl FnMut(&str) -> bool,
    opts: &ReduceOptions,
) -> Result<(String, ReduceStats), ReduceError> {
    let program =
        parser::parse(source).map_err(|e| ReduceError::OriginalDoesNotParse(e.to_string()))?;
    let mut stats = ReduceStats {
        initial_lines: count_lines(source),
        ..ReduceStats::default()
    };

    let rendered = render(&program);
    stats.tested += 1;
    if !predicate(&rendered) {
        return Err(ReduceError::NotReproducible);
    }

    let mut r = Reducer {
        current: program,
        predicate: &mut predicate,
        stats,
        budget: opts.max_tests,
    };
    loop {
        let before = r.stats.accepted;
        r.pass_drop_functions();
        r.pass_empty_bodies();
        r.pass_drop_globals();
        r.pass_drop_statements();
        r.pass_flatten_blocks();
        r.pass_simplify_exprs();
        if r.stats.accepted == before || r.budget == 0 {
            break;
        }
    }

    let out = render(&r.current);
    let mut stats = r.stats;
    stats.final_lines = count_lines(&out);
    Ok((out, stats))
}

fn count_lines(s: &str) -> usize {
    s.lines().filter(|l| !l.trim().is_empty()).count()
}

struct Reducer<'p> {
    current: Program,
    predicate: &'p mut dyn FnMut(&str) -> bool,
    stats: ReduceStats,
    budget: usize,
}

impl Reducer<'_> {
    /// Tests `candidate`; commits it as the new current program when the
    /// predicate still holds.
    fn try_commit(&mut self, candidate: Program) -> bool {
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;
        self.stats.tested += 1;
        let rendered = render(&candidate);
        if (self.predicate)(&rendered) {
            self.current = candidate;
            self.stats.accepted += 1;
            true
        } else {
            false
        }
    }

    /// Tries deleting each function (reverse declaration order, so
    /// leaves-last programs shed callees first). `main` stays.
    fn pass_drop_functions(&mut self) {
        let mut i = self.current.funcs.len();
        while i > 0 {
            i -= 1;
            if self.current.funcs[i].name == "main" {
                continue;
            }
            let mut cand = self.current.clone();
            cand.funcs.remove(i);
            if self.try_commit(cand) {
                i = i.min(self.current.funcs.len());
            }
        }
    }

    /// Tries replacing each function body with the smallest legal one.
    fn pass_empty_bodies(&mut self) {
        for i in 0..self.current.funcs.len() {
            let f = &self.current.funcs[i];
            let minimal: Vec<Stmt> = if f.returns_value {
                vec![Stmt::Return(
                    Some(Expr::Int(0, Default::default())),
                    Default::default(),
                )]
            } else {
                Vec::new()
            };
            if f.body.len() == minimal.len() {
                continue;
            }
            let mut cand = self.current.clone();
            cand.funcs[i].body = minimal;
            self.try_commit(cand);
        }
    }

    fn pass_drop_globals(&mut self) {
        let mut i = self.current.globals.len();
        while i > 0 {
            i -= 1;
            let mut cand = self.current.clone();
            cand.globals.remove(i);
            if self.try_commit(cand) {
                i = i.min(self.current.globals.len());
            }
        }
    }

    /// Tries deleting each statement, innermost blocks included.
    fn pass_drop_statements(&mut self) {
        let mut site = total_stmts(&self.current);
        while site > 0 {
            site -= 1;
            let mut cand = self.current.clone();
            if edit_stmt(&mut cand, site, &StmtEdit::Delete) && self.try_commit(cand) {
                site = site.min(total_stmts(&self.current));
            }
        }
    }

    /// Tries replacing each `if`/`while` with the statements of its
    /// bodies (keeps nested work while deleting the control structure).
    fn pass_flatten_blocks(&mut self) {
        let mut site = total_stmts(&self.current);
        while site > 0 {
            site -= 1;
            let mut cand = self.current.clone();
            if edit_stmt(&mut cand, site, &StmtEdit::Flatten) && self.try_commit(cand) {
                site = site.min(total_stmts(&self.current));
            }
        }
    }

    /// Tries, at every expression site, each child operand and then a
    /// literal `0` as a replacement.
    fn pass_simplify_exprs(&mut self) {
        let mut site = total_exprs(&self.current);
        while site > 0 {
            site -= 1;
            for edit in [ExprEdit::Lhs, ExprEdit::Rhs, ExprEdit::Zero] {
                let mut cand = self.current.clone();
                if edit_expr(&mut cand, site, &edit) && self.try_commit(cand) {
                    break;
                }
            }
            site = site.min(total_exprs(&self.current));
        }
    }
}

// --- statement traversal ---------------------------------------------------

enum StmtEdit {
    Delete,
    Flatten,
}

fn total_stmts(p: &Program) -> usize {
    fn count(body: &[Stmt]) -> usize {
        body.iter()
            .map(|s| {
                1 + match s {
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => count(then_body) + count(else_body),
                    Stmt::While { body, .. } => count(body),
                    _ => 0,
                }
            })
            .sum()
    }
    p.funcs.iter().map(|f| count(&f.body)).sum()
}

/// Applies `edit` to the `site`-th statement in program preorder.
/// Returns `false` when the edit does not apply there (e.g. flattening a
/// non-block statement) or the site is out of range.
fn edit_stmt(p: &mut Program, site: usize, edit: &StmtEdit) -> bool {
    fn walk(body: &mut Vec<Stmt>, n: &mut usize, edit: &StmtEdit) -> bool {
        let mut i = 0;
        while i < body.len() {
            if *n == 0 {
                return match edit {
                    StmtEdit::Delete => {
                        body.remove(i);
                        true
                    }
                    StmtEdit::Flatten => match body[i].clone() {
                        Stmt::If {
                            then_body,
                            mut else_body,
                            ..
                        } => {
                            let mut merged = then_body;
                            merged.append(&mut else_body);
                            body.splice(i..=i, merged);
                            true
                        }
                        Stmt::While {
                            body: inner_body, ..
                        } => {
                            body.splice(i..=i, inner_body);
                            true
                        }
                        _ => false,
                    },
                };
            }
            *n -= 1;
            let descended = match &mut body[i] {
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => walk(then_body, n, edit) || walk(else_body, n, edit),
                Stmt::While { body: inner, .. } => walk(inner, n, edit),
                _ => false,
            };
            if descended {
                return true;
            }
            i += 1;
        }
        false
    }
    let mut n = site;
    for f in &mut p.funcs {
        if walk(&mut f.body, &mut n, edit) {
            return true;
        }
    }
    false
}

// --- expression traversal --------------------------------------------------

enum ExprEdit {
    /// Replace with the first child (Bin lhs, Neg/Not operand, Index
    /// index, first call argument).
    Lhs,
    /// Replace with the second child (Bin rhs, second call argument).
    Rhs,
    /// Replace with literal `0`.
    Zero,
}

fn total_exprs(p: &Program) -> usize {
    let mut n = 0usize;
    let mut count = |_: &mut Expr| {
        n += 1;
        false
    };
    let mut q = p.clone();
    visit_exprs(&mut q, &mut count);
    n
}

/// Applies `edit` to the `site`-th expression in program preorder.
fn edit_expr(p: &mut Program, site: usize, edit: &ExprEdit) -> bool {
    let mut n = site;
    let mut changed = false;
    let mut f = |e: &mut Expr| {
        if n > 0 {
            n -= 1;
            return false;
        }
        let replacement = match (edit, &*e) {
            (ExprEdit::Zero, Expr::Int(0, _)) => None, // already minimal
            (ExprEdit::Zero, _) => Some(Expr::Int(0, Default::default())),
            (ExprEdit::Lhs, Expr::Bin(_, l, _, _)) => Some((**l).clone()),
            (ExprEdit::Lhs, Expr::Neg(x, _) | Expr::Not(x, _)) => Some((**x).clone()),
            (ExprEdit::Lhs, Expr::Index(_, i, _)) => Some((**i).clone()),
            (ExprEdit::Lhs, Expr::Call { args, .. }) if !args.is_empty() => Some(args[0].clone()),
            (ExprEdit::Rhs, Expr::Bin(_, _, r, _)) => Some((**r).clone()),
            (ExprEdit::Rhs, Expr::Call { args, .. }) if args.len() > 1 => Some(args[1].clone()),
            _ => None,
        };
        if let Some(r) = replacement {
            *e = r;
            changed = true;
        }
        true // stop the walk either way: the site was reached
    };
    visit_exprs(p, &mut f);
    changed
}

/// Preorder walk over every expression in the program. The callback
/// returns `true` to stop the walk.
fn visit_exprs(p: &mut Program, f: &mut impl FnMut(&mut Expr) -> bool) {
    fn expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
        if f(e) {
            return true;
        }
        match e {
            Expr::Bin(_, l, r, _) => expr(l, f) || expr(r, f),
            Expr::Neg(x, _) | Expr::Not(x, _) => expr(x, f),
            Expr::Index(_, i, _) => expr(i, f),
            Expr::Call { args, .. } => args.iter_mut().any(|a| expr(a, f)),
            Expr::Int(..) | Expr::Name(..) | Expr::FuncAddr(..) => false,
        }
    }
    fn stmts(body: &mut [Stmt], f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
        for s in body {
            let hit = match s {
                Stmt::Var { init: Some(e), .. } => expr(e, f),
                Stmt::Var { init: None, .. } => false,
                Stmt::Assign { target, value, .. } => {
                    let t = match target {
                        LValue::Index(_, i) => expr(i, f),
                        LValue::Name(_) => false,
                    };
                    t || expr(value, f)
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => expr(cond, f) || stmts(then_body, f) || stmts(else_body, f),
                Stmt::While { cond, body } => expr(cond, f) || stmts(body, f),
                Stmt::Return(Some(e), _) => expr(e, f),
                Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) => false,
                Stmt::Print(e) | Stmt::ExprStmt(e) => expr(e, f),
            };
            if hit {
                return true;
            }
        }
        false
    }
    for func in &mut p.funcs {
        if stmts(&mut func.body, f) {
            return;
        }
    }
}

// --- pretty printer --------------------------------------------------------

/// Renders a program back to Mini source. Sub-expressions are fully
/// parenthesized, so operator precedence never changes a reduced
/// candidate's meaning.
pub fn render(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        match g.ty {
            Ty::Int => {
                if let Some(v) = g.init.first() {
                    let _ = writeln!(out, "global {}: int = {v};", g.name);
                } else {
                    let _ = writeln!(out, "global {}: int;", g.name);
                }
            }
            Ty::Array(n) => {
                let _ = writeln!(out, "global {}: [int; {n}];", g.name);
            }
            Ty::FnPtr => {
                // Unreachable today (the frontend rejects fnptr globals),
                // but render something parseable rather than panic.
                let _ = writeln!(out, "global {}: fnptr;", g.name);
            }
        }
    }
    for f in &p.funcs {
        render_func(&mut out, f);
    }
    out
}

fn render_func(out: &mut String, f: &FuncDecl) {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(n, t)| match t {
            Ty::FnPtr => format!("{n}: fnptr"),
            _ => format!("{n}: int"),
        })
        .collect();
    let ext = if f.is_extern { "extern " } else { "" };
    let ret = if f.returns_value { " -> int" } else { "" };
    let _ = writeln!(out, "{ext}fn {}({}){ret} {{", f.name, params.join(", "));
    render_stmts(out, &f.body, 1);
    let _ = writeln!(out, "}}");
}

fn render_stmts(out: &mut String, body: &[Stmt], indent: usize) {
    let pad = "  ".repeat(indent);
    for s in body {
        match s {
            Stmt::Var { name, ty, init, .. } => {
                let tyname = match ty {
                    Ty::Int => "int".to_string(),
                    Ty::Array(n) => format!("[int; {n}]"),
                    Ty::FnPtr => "fnptr".to_string(),
                };
                match init {
                    Some(e) => {
                        let _ = writeln!(out, "{pad}var {name}: {tyname} = {};", render_expr(e));
                    }
                    None => {
                        let _ = writeln!(out, "{pad}var {name}: {tyname};");
                    }
                }
            }
            Stmt::Assign { target, value, .. } => match target {
                LValue::Name(n) => {
                    let _ = writeln!(out, "{pad}{n} = {};", render_expr(value));
                }
                LValue::Index(n, i) => {
                    let _ = writeln!(
                        out,
                        "{pad}{n}[{}] = {};",
                        render_expr(i),
                        render_expr(value)
                    );
                }
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let _ = writeln!(out, "{pad}if {} {{", render_expr(cond));
                render_stmts(out, then_body, indent + 1);
                if else_body.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    render_stmts(out, else_body, indent + 1);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::While { cond, body } => {
                let _ = writeln!(out, "{pad}while {} {{", render_expr(cond));
                render_stmts(out, body, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Return(Some(e), _) => {
                let _ = writeln!(out, "{pad}return {};", render_expr(e));
            }
            Stmt::Return(None, _) => {
                let _ = writeln!(out, "{pad}return;");
            }
            Stmt::Print(e) => {
                let _ = writeln!(out, "{pad}print({});", render_expr(e));
            }
            Stmt::Break(_) => {
                let _ = writeln!(out, "{pad}break;");
            }
            Stmt::Continue(_) => {
                let _ = writeln!(out, "{pad}continue;");
            }
            Stmt::ExprStmt(e) => {
                let _ = writeln!(out, "{pad}{};", render_expr(e));
            }
        }
    }
}

fn bin_op_str(op: BinAst) -> &'static str {
    match op {
        BinAst::Add => "+",
        BinAst::Sub => "-",
        BinAst::Mul => "*",
        BinAst::Div => "/",
        BinAst::Rem => "%",
        BinAst::Eq => "==",
        BinAst::Ne => "!=",
        BinAst::Lt => "<",
        BinAst::Le => "<=",
        BinAst::Gt => ">",
        BinAst::Ge => ">=",
        BinAst::And => "&&",
        BinAst::Or => "||",
        BinAst::BitAnd => "&",
        BinAst::BitOr => "|",
        BinAst::BitXor => "^",
        BinAst::Shl => "<<",
        BinAst::Shr => ">>",
    }
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v, _) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        Expr::Name(n, _) => n.clone(),
        Expr::Index(n, i, _) => format!("{n}[{}]", render_expr(i)),
        Expr::FuncAddr(n, _) => format!("&{n}"),
        Expr::Call { name, args, .. } => {
            let args: Vec<String> = args.iter().map(render_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Bin(op, l, r, _) => {
            format!(
                "({} {} {})",
                render_expr(l),
                bin_op_str(*op),
                render_expr(r)
            )
        }
        Expr::Neg(x, _) => format!("(-{})", render_expr(x)),
        Expr::Not(x, _) => format!("(!{})", render_expr(x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rendering a parsed program must preserve its meaning: same interp
    /// output before and after a parse → render → compile round trip.
    #[test]
    fn render_round_trips_semantics() {
        for seed in 0..8u64 {
            let src = crate::synth::random_source(seed, &crate::synth::SourceConfig::default());
            let before = ipra_ir::interp::run_module(&ipra_frontend::compile(&src).unwrap());
            let rendered = render(&parser::parse(&src).unwrap());
            let after = ipra_ir::interp::run_module(
                &ipra_frontend::compile(&rendered)
                    .unwrap_or_else(|e| panic!("seed {seed}: render broke parse: {e}\n{rendered}")),
            );
            assert_eq!(
                before.as_ref().map(|r| &r.output),
                after.as_ref().map(|r| &r.output),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn unreproducible_failure_is_rejected() {
        let err = reduce("fn main() { }", |_| false, &ReduceOptions::default());
        assert_eq!(err.unwrap_err(), ReduceError::NotReproducible);
    }

    #[test]
    fn parse_error_is_reported() {
        let err = reduce("fn fn fn", |_| true, &ReduceOptions::default());
        assert!(matches!(err, Err(ReduceError::OriginalDoesNotParse(_))));
    }

    /// A predicate keyed on one statement's behavior should strip nearly
    /// everything else.
    #[test]
    fn reduces_to_the_interesting_kernel() {
        let src = r#"
            global g0: int = 5;
            global g1: int = 7;
            fn noise(a: int, b: int) -> int {
                var t: int = a * b;
                if t > 10 { t = t - 10; }
                return t;
            }
            fn key(x: int) -> int { return x * 1000 + 729; }
            fn main() {
                var a: int = noise(3, 4);
                var b: int = noise(a, g0);
                print(a + b);
                print(key(g1));
                print(g0 - g1);
            }
        "#;
        // "Fails" when the program still prints 7729 somewhere.
        let failing = |s: &str| {
            ipra_frontend::compile(s)
                .ok()
                .and_then(|m| ipra_ir::interp::run_module(&m).ok())
                .is_some_and(|r| r.output.contains(&7729))
        };
        assert!(failing(src), "kernel must reproduce up front");
        let (out, stats) = reduce(src, failing, &ReduceOptions::default()).unwrap();
        assert!(failing(&out), "reduced program still reproduces");
        // The minimal witness is `key` + a `main` that prints it: 7 lines.
        assert!(
            stats.final_lines <= 7,
            "expected the minimal witness, got {} lines:\n{out}",
            stats.final_lines
        );
        assert!(
            !out.contains("noise"),
            "unrelated function survived:\n{out}"
        );
        assert!(!out.contains("g0"), "unrelated global survived:\n{out}");
    }
}
