//! Transitive global mod/ref summaries.
//!
//! Used by the global-scalar promotion pass: a global scalar may live in a
//! register across a call only when the callee (transitively) neither reads
//! nor writes it. Indirect call sites conservatively touch every global.

use ipra_ir::{Address, FuncId, Inst, Module};

use crate::graph::CallGraph;
use crate::scc::SccInfo;

/// Per-function sets of globals (by index) that may be read/written,
/// including effects of all transitive callees.
#[derive(Clone, Debug)]
pub struct ModRef {
    /// Globals possibly read by the function or its callees.
    pub reads: Vec<Vec<bool>>,
    /// Globals possibly written by the function or its callees.
    pub writes: Vec<Vec<bool>>,
    /// Whether the function may (transitively) perform an indirect call,
    /// in which case it must be assumed to touch every global.
    pub calls_unknown: Vec<bool>,
}

impl ModRef {
    /// Computes summaries bottom-up over the SCC condensation. Functions in
    /// one SCC share one fixpoint (iterated until stable).
    pub fn compute(module: &Module, cg: &CallGraph, scc: &SccInfo) -> Self {
        let nf = module.funcs.len();
        let ng = module.globals.len();
        let mut reads = vec![vec![false; ng]; nf];
        let mut writes = vec![vec![false; ng]; nf];
        let mut calls_unknown = vec![false; nf];

        // Direct effects.
        for (id, f) in module.funcs.iter() {
            let i = id.index();
            for (_, inst) in f.inst_locs() {
                match inst {
                    Inst::Load {
                        addr: Address::Global { global, .. },
                        ..
                    } => {
                        reads[i][global.index()] = true;
                    }
                    Inst::Store {
                        addr: Address::Global { global, .. },
                        ..
                    } => {
                        writes[i][global.index()] = true;
                    }
                    _ => {}
                }
            }
            calls_unknown[i] = cg.has_indirect_site[i];
        }

        // Propagate over components bottom-up; iterate within a component
        // until its members stabilize (cycles).
        for comp in &scc.components {
            let mut changed = true;
            while changed {
                changed = false;
                for &f in comp {
                    let fi = f.index();
                    for c in cg.callees(f).to_vec() {
                        let ci = c.index();
                        if ci == fi {
                            continue;
                        }
                        if calls_unknown[ci] && !calls_unknown[fi] {
                            calls_unknown[fi] = true;
                            changed = true;
                        }
                        for g in 0..ng {
                            if reads[ci][g] && !reads[fi][g] {
                                reads[fi][g] = true;
                                changed = true;
                            }
                            if writes[ci][g] && !writes[fi][g] {
                                writes[fi][g] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }

        ModRef {
            reads,
            writes,
            calls_unknown,
        }
    }

    /// Whether a call to `callee` may read or write global index `g`.
    pub fn touches(&self, callee: FuncId, g: usize) -> bool {
        let i = callee.index();
        self.calls_unknown[i] || self.reads[i][g] || self.writes[i][g]
    }

    /// Whether a call to `callee` may write global index `g`.
    pub fn may_write(&self, callee: FuncId, g: usize) -> bool {
        let i = callee.index();
        self.calls_unknown[i] || self.writes[i][g]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::{GlobalData, Operand};

    #[test]
    fn effects_propagate_through_calls() {
        let mut m = Module::new();
        let g = m.add_global(GlobalData::scalar("x"));
        let h = m.add_global(GlobalData::scalar("y"));
        let writer = m.declare_func("writer");
        let mid = m.declare_func("mid");
        let top = m.declare_func("top");
        {
            let mut b = FunctionBuilder::new("writer");
            b.store(1, Address::global_scalar(g));
            b.ret(None);
            m.define_func(writer, b.build());
        }
        {
            let mut b = FunctionBuilder::new("mid");
            b.call_void(writer, vec![]);
            let v = b.load(Address::global_scalar(h));
            b.print(v);
            b.ret(None);
            m.define_func(mid, b.build());
        }
        {
            let mut b = FunctionBuilder::new("top");
            b.call_void(mid, vec![]);
            b.ret(None);
            m.define_func(top, b.build());
        }
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        let mr = ModRef::compute(&m, &cg, &scc);
        assert!(
            mr.writes[top.index()][g.index()],
            "write reaches top transitively"
        );
        assert!(mr.reads[top.index()][h.index()]);
        assert!(!mr.reads[writer.index()][h.index()]);
        assert!(mr.may_write(top, g.index()));
        assert!(!mr.may_write(writer, h.index()));
        assert!(mr.touches(mid, h.index()));
    }

    #[test]
    fn indirect_calls_are_conservative() {
        let mut m = Module::new();
        let g = m.add_global(GlobalData::scalar("x"));
        let f = m.declare_func("f");
        {
            let mut b = FunctionBuilder::new("f");
            b.ret(None);
            m.define_func(f, b.build());
        }
        let mut b = FunctionBuilder::new("main");
        let p = b.func_addr(f);
        let _ = b.call_indirect(p, vec![]);
        b.ret(None);
        let main = m.add_func(b.build());
        m.main = Some(main);
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        let mr = ModRef::compute(&m, &cg, &scc);
        assert!(mr.calls_unknown[main.index()]);
        assert!(
            mr.touches(main, g.index()),
            "indirect call touches everything"
        );
        assert!(!mr.touches(f, g.index()));
    }

    #[test]
    fn recursive_component_reaches_fixpoint() {
        let mut m = Module::new();
        let g = m.add_global(GlobalData::scalar("x"));
        let a = m.declare_func("a");
        let b_id = m.declare_func("b");
        {
            let mut b = FunctionBuilder::new("a");
            b.call_void(b_id, vec![]);
            b.ret(None);
            m.define_func(a, b.build());
        }
        {
            let mut b = FunctionBuilder::new("b");
            b.store(Operand::Imm(1), Address::global_scalar(g));
            b.call_void(a, vec![]);
            b.ret(None);
            m.define_func(b_id, b.build());
        }
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        let mr = ModRef::compute(&m, &cg, &scc);
        assert!(
            mr.writes[a.index()][g.index()],
            "cycle member inherits partner's effect"
        );
        assert!(mr.writes[b_id.index()][g.index()]);
    }
}
