//! # ipra-callgraph — call-graph analyses
//!
//! Call-graph construction, Tarjan SCCs (recursion detection), the
//! open/closed procedure classification of Chow's PLDI 1988 paper (§3), the
//! bottom-up processing order used by the one-pass inter-procedural register
//! allocator, and transitive global mod/ref summaries.
//!
//! ```
//! use ipra_ir::{builder::FunctionBuilder, Module};
//! use ipra_callgraph::{CallGraph, Openness, SccInfo};
//!
//! let mut m = Module::new();
//! let leaf = m.declare_func("leaf");
//! let mut b = FunctionBuilder::new("leaf");
//! b.ret(None);
//! m.define_func(leaf, b.build());
//! let mut b = FunctionBuilder::new("main");
//! b.call_void(leaf, vec![]);
//! b.ret(None);
//! let main = m.add_func(b.build());
//! m.main = Some(main);
//!
//! let cg = CallGraph::build(&m);
//! let scc = SccInfo::compute(&cg);
//! let open = Openness::compute(&m, &cg, &scc);
//! assert!(open.is_closed(leaf));
//! assert!(open.is_open(main), "main is always open");
//! // Bottom-up order visits the leaf before main.
//! let order = scc.bottom_up_order();
//! assert_eq!(order, vec![leaf, main]);
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod graph;
pub mod modref;
pub mod scc;

pub use classify::{OpenReason, Openness};
pub use graph::{CallGraph, CallSite};
pub use modref::ModRef;
pub use scc::SccInfo;
