//! Tarjan strongly-connected components over the call graph.

use ipra_ir::FuncId;

use crate::graph::CallGraph;

/// SCC decomposition of the call graph.
///
/// Components are emitted in *bottom-up* (reverse topological) order: every
/// component appears before any component that calls into it. This is
/// exactly the processing order the one-pass inter-procedural allocator
/// needs (paper §2: depth-first traversal, callees first).
#[derive(Clone, Debug)]
pub struct SccInfo {
    /// Components in bottom-up order.
    pub components: Vec<Vec<FuncId>>,
    /// Component index of each function.
    pub component_of: Vec<usize>,
    /// Whether each function sits on a call-graph cycle (member of a
    /// multi-node SCC, or directly self-recursive).
    pub on_cycle: Vec<bool>,
}

impl SccInfo {
    /// Runs Tarjan's algorithm (iterative) over all functions.
    pub fn compute(cg: &CallGraph) -> Self {
        let n = cg.len();
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<FuncId>> = Vec::new();
        let mut component_of = vec![usize::MAX; n];

        // Iterative Tarjan: frame = (node, next callee position).
        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
                let callees = &cg.callees[v];
                if *ci < callees.len() {
                    let w = callees[*ci].index();
                    *ci += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        // v roots a component.
                        let comp_idx = components.len();
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component_of[w] = comp_idx;
                            comp.push(FuncId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                }
            }
        }

        let mut on_cycle = vec![false; n];
        for comp in &components {
            if comp.len() > 1 {
                for &f in comp {
                    on_cycle[f.index()] = true;
                }
            }
        }
        // Direct self-recursion forms a singleton SCC but is still a cycle.
        for (f, cyclic) in on_cycle.iter_mut().enumerate() {
            if cg.callees[f].iter().any(|c| c.index() == f) {
                *cyclic = true;
            }
        }

        SccInfo {
            components,
            component_of,
            on_cycle,
        }
    }

    /// Reports call-graph structure counters to the observability sink.
    /// Called once per compilation (helper passes may compute extra SCC
    /// decompositions; those are not reported).
    pub fn record_stats(&self) {
        ipra_obs::counter("callgraph.functions", self.component_of.len() as u64);
        ipra_obs::counter("callgraph.sccs", self.components.len() as u64);
        ipra_obs::counter(
            "callgraph.recursive_funcs",
            self.on_cycle.iter().filter(|&&c| c).count() as u64,
        );
        ipra_obs::counter(
            "callgraph.largest_scc",
            self.components.iter().map(|c| c.len()).max().unwrap_or(0) as u64,
        );
    }

    /// A flat bottom-up processing order over all functions: every function
    /// appears after all functions it calls, except along cycle edges.
    pub fn bottom_up_order(&self) -> Vec<FuncId> {
        self.components.iter().flatten().copied().collect()
    }

    /// Partitions the components into *waves* (levels of the condensation
    /// DAG): level 0 holds the components with no calls outside themselves;
    /// a component's level is one more than the deepest level it calls
    /// into. All components of one level are mutually independent — none
    /// (transitively) calls another — so once every lower level is
    /// summarized, a whole level can be allocated in parallel without
    /// violating the paper's bottom-up invariant (callee summaries ready
    /// at every call site).
    ///
    /// Returns component indices into [`SccInfo::components`], each level
    /// sorted ascending (bottom-up order within the level).
    pub fn levels(&self, cg: &CallGraph) -> Vec<Vec<usize>> {
        let nc = self.components.len();
        let mut level = vec![0usize; nc];
        // Components are in bottom-up order, so every cross-component
        // callee has a smaller index and its level is already final.
        for (ci, comp) in self.components.iter().enumerate() {
            let mut l = 0;
            for &f in comp {
                for &callee in &cg.callees[f.index()] {
                    let cc = self.component_of[callee.index()];
                    if cc != ci {
                        l = l.max(level[cc] + 1);
                    }
                }
            }
            level[ci] = l;
        }
        let depth = level.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut waves: Vec<Vec<usize>> = vec![Vec::new(); depth];
        for (ci, &l) in level.iter().enumerate() {
            waves[l].push(ci);
        }
        waves
    }

    /// The set of functions whose allocation may change when `seeds`
    /// change: the seeds plus everything that (transitively) calls them,
    /// in `FuncId` order. This is the *upper bound* the incremental cache
    /// invalidates against; the summary-keyed cache typically stops far
    /// earlier (a caller whose callees' summaries are byte-identical is a
    /// hit — the early cutoff), so this closure is what tests compare the
    /// observed miss set *against*, not what the cache recompiles.
    pub fn dirty_closure(&self, cg: &CallGraph, seeds: &[FuncId]) -> Vec<FuncId> {
        let n = cg.len();
        let mut dirty = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for &s in seeds {
            if !dirty[s.index()] {
                dirty[s.index()] = true;
                stack.push(s.index());
            }
        }
        while let Some(f) = stack.pop() {
            for caller in cg.callers(FuncId(f as u32)) {
                if !dirty[caller.index()] {
                    dirty[caller.index()] = true;
                    stack.push(caller.index());
                }
            }
        }
        (0..n)
            .filter(|&i| dirty[i])
            .map(|i| FuncId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;
    use ipra_ir::Module;

    /// Builds a module from an adjacency list (functions call in order).
    fn module_from_edges(n: usize, edges: &[(usize, usize)]) -> Module {
        let mut m = Module::new();
        let ids: Vec<FuncId> = (0..n).map(|i| m.declare_func(format!("f{i}"))).collect();
        for i in 0..n {
            let mut b = FunctionBuilder::new(format!("f{i}"));
            for &(from, to) in edges {
                if from == i {
                    b.call_void(ids[to], vec![]);
                }
            }
            b.ret(None);
            m.define_func(ids[i], b.build());
        }
        m
    }

    #[test]
    fn dag_bottom_up_order_respects_edges() {
        // 0 -> 1 -> 2, 0 -> 2
        let m = module_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        assert_eq!(scc.components.len(), 3);
        assert!(scc.on_cycle.iter().all(|&c| !c));
        let order = scc.bottom_up_order();
        let pos = |f: usize| order.iter().position(|x| x.index() == f).unwrap();
        assert!(pos(2) < pos(1), "callee before caller");
        assert!(pos(1) < pos(0));
        assert!(pos(2) < pos(0));
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        // 0 -> 1 -> 2 -> 1 (cycle between 1 and 2)
        let m = module_from_edges(3, &[(0, 1), (1, 2), (2, 1)]);
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        assert_eq!(scc.components.len(), 2);
        assert_eq!(scc.component_of[1], scc.component_of[2]);
        assert!(scc.on_cycle[1] && scc.on_cycle[2]);
        assert!(!scc.on_cycle[0]);
        let order = scc.bottom_up_order();
        assert_eq!(order.last().unwrap().index(), 0, "root processed last");
    }

    #[test]
    fn self_recursion_flagged() {
        let m = module_from_edges(2, &[(0, 0), (0, 1)]);
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        assert!(scc.on_cycle[0]);
        assert!(!scc.on_cycle[1]);
    }

    #[test]
    fn levels_of_dag_put_callees_strictly_lower() {
        // Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let m = module_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        let waves = scc.levels(&cg);
        assert_eq!(waves.len(), 3);
        // Every wave's members are exactly the components, once each.
        let total: usize = waves.iter().map(|w| w.len()).sum();
        assert_eq!(total, scc.components.len());
        let wave_of = |f: usize| {
            let ci = scc.component_of[f];
            waves.iter().position(|w| w.contains(&ci)).unwrap()
        };
        assert_eq!(wave_of(3), 0);
        assert_eq!(wave_of(1), 1);
        assert_eq!(wave_of(2), 1);
        assert_eq!(wave_of(0), 2);
        // Invariant the scheduler relies on: every cross-component callee
        // sits in a strictly lower wave.
        for (from, to) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            assert!(wave_of(to) < wave_of(from));
        }
    }

    #[test]
    fn levels_handle_mutual_recursion_as_one_unit() {
        // 0 -> 1 <-> 2, 2 -> 3
        let m = module_from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        let waves = scc.levels(&cg);
        // Leaf 3 at level 0, the {1,2} cycle at level 1, root 0 at level 2.
        assert_eq!(waves.len(), 3);
        let cycle = scc.component_of[1];
        assert_eq!(scc.component_of[2], cycle);
        assert!(waves[1].contains(&cycle));
        assert!(waves[0].contains(&scc.component_of[3]));
        assert!(waves[2].contains(&scc.component_of[0]));
        // Intra-component edges (1 <-> 2) must not inflate the level.
        assert_eq!(waves[1].len(), 1);
    }

    #[test]
    fn levels_of_disconnected_functions_share_wave_zero() {
        // 0 -> 1; 2 and 3 are isolated roots.
        let m = module_from_edges(4, &[(0, 1)]);
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        let waves = scc.levels(&cg);
        assert_eq!(waves.len(), 2);
        // 1, 2, 3 have no callees: all in wave 0. Caller 0 in wave 1.
        assert_eq!(waves[0].len(), 3);
        assert_eq!(waves[1], vec![scc.component_of[0]]);
        // Waves list components ascending, preserving bottom-up order.
        for w in &waves {
            assert!(w.windows(2).all(|p| p[0] < p[1]));
        }
    }

    #[test]
    fn levels_of_empty_module_are_empty() {
        let m = Module::new();
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        assert!(scc.levels(&cg).is_empty());
    }

    #[test]
    fn dirty_closure_is_the_ancestor_set() {
        // Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3; plus isolated 4.
        let m = module_from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        let ids = |v: &[usize]| v.iter().map(|&i| FuncId(i as u32)).collect::<Vec<_>>();
        assert_eq!(scc.dirty_closure(&cg, &ids(&[3])), ids(&[0, 1, 2, 3]));
        assert_eq!(scc.dirty_closure(&cg, &ids(&[1])), ids(&[0, 1]));
        assert_eq!(scc.dirty_closure(&cg, &ids(&[4])), ids(&[4]));
        assert_eq!(scc.dirty_closure(&cg, &[]), Vec::<FuncId>::new());
        // Mutual recursion: the whole cycle and its callers are dirty.
        let m = module_from_edges(3, &[(0, 1), (1, 2), (2, 1)]);
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        assert_eq!(scc.dirty_closure(&cg, &ids(&[2])), ids(&[0, 1, 2]));
    }

    #[test]
    fn disconnected_functions_all_appear() {
        let m = module_from_edges(4, &[(0, 1)]);
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        let order = scc.bottom_up_order();
        assert_eq!(order.len(), 4);
        let mut seen: Vec<usize> = order.iter().map(|f| f.index()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
