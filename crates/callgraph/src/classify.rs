//! Open/closed procedure classification (paper §3).
//!
//! A procedure is *open* when the inter-procedural scheme cannot propagate
//! its register-usage information to all callers: some caller is processed
//! before it (cycles in the call graph) or is unknown (external visibility,
//! address-taken / indirect call targets, or the operating system in the
//! case of `main`). Open procedures use the default linkage convention.

use ipra_ir::{FuncId, Module};

use crate::graph::CallGraph;
use crate::scc::SccInfo;

/// Why a procedure was classified open. A procedure may be open for several
/// reasons; all are recorded for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpenReason {
    /// The program entry point — always called externally by the OS.
    Main,
    /// Marked externally visible (separate compilation).
    ExternalVisible,
    /// Address taken, so it may be called indirectly.
    AddressTaken,
    /// Sits on a call-graph cycle (direct or mutual recursion).
    Recursive,
}

impl std::fmt::Display for OpenReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpenReason::Main => "program entry",
            OpenReason::ExternalVisible => "externally visible",
            OpenReason::AddressTaken => "address taken",
            OpenReason::Recursive => "recursive",
        };
        f.write_str(s)
    }
}

/// Open/closed classification for every function of a module.
#[derive(Clone, Debug)]
pub struct Openness {
    reasons: Vec<Vec<OpenReason>>,
}

impl Openness {
    /// Classifies all functions.
    pub fn compute(module: &Module, cg: &CallGraph, scc: &SccInfo) -> Self {
        let n = module.funcs.len();
        let mut reasons: Vec<Vec<OpenReason>> = vec![Vec::new(); n];
        for (id, f) in module.funcs.iter() {
            let i = id.index();
            if module.main == Some(id) {
                reasons[i].push(OpenReason::Main);
            }
            if f.attrs.external_visible {
                reasons[i].push(OpenReason::ExternalVisible);
            }
            if cg.address_taken[i] {
                reasons[i].push(OpenReason::AddressTaken);
            }
            if scc.on_cycle[i] {
                reasons[i].push(OpenReason::Recursive);
            }
        }
        Openness { reasons }
    }

    /// Reports the open/closed split to the observability sink.
    pub fn record_stats(&self) {
        ipra_obs::counter("callgraph.open_funcs", self.num_open() as u64);
        ipra_obs::counter(
            "callgraph.closed_funcs",
            self.reasons.iter().filter(|r| r.is_empty()).count() as u64,
        );
    }

    /// Whether `f` is open.
    pub fn is_open(&self, f: FuncId) -> bool {
        !self.reasons[f.index()].is_empty()
    }

    /// Whether `f` is closed (its summary is visible to every caller).
    pub fn is_closed(&self, f: FuncId) -> bool {
        !self.is_open(f)
    }

    /// The reasons `f` is open (empty for closed procedures).
    pub fn reasons(&self, f: FuncId) -> &[OpenReason] {
        &self.reasons[f.index()]
    }

    /// Number of open procedures.
    pub fn num_open(&self) -> usize {
        self.reasons.iter().filter(|r| !r.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;

    #[test]
    fn classification_covers_all_reasons() {
        let mut m = Module::new();
        let rec = m.declare_func("rec");
        let closed = m.declare_func("closed");
        let ext = m.declare_func("ext");
        let taken = m.declare_func("taken");
        {
            let mut b = FunctionBuilder::new("rec");
            b.call_void(rec, vec![]);
            b.ret(None);
            m.define_func(rec, b.build());
        }
        {
            let mut b = FunctionBuilder::new("closed");
            b.ret(None);
            m.define_func(closed, b.build());
        }
        {
            let mut b = FunctionBuilder::new("ext");
            b.set_external_visible();
            b.ret(None);
            m.define_func(ext, b.build());
        }
        {
            let mut b = FunctionBuilder::new("taken");
            b.ret(None);
            m.define_func(taken, b.build());
        }
        let mut b = FunctionBuilder::new("main");
        b.call_void(rec, vec![]);
        b.call_void(closed, vec![]);
        let p = b.func_addr(taken);
        let _ = b.call_indirect(p, vec![]);
        b.ret(None);
        let main = m.add_func(b.build());
        m.main = Some(main);

        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        let open = Openness::compute(&m, &cg, &scc);

        assert!(open.is_open(main));
        assert_eq!(open.reasons(main), &[OpenReason::Main]);
        assert!(open.is_open(rec));
        assert_eq!(open.reasons(rec), &[OpenReason::Recursive]);
        assert!(open.is_open(ext));
        assert_eq!(open.reasons(ext), &[OpenReason::ExternalVisible]);
        assert!(open.is_open(taken));
        assert_eq!(open.reasons(taken), &[OpenReason::AddressTaken]);
        assert!(open.is_closed(closed), "plain callee stays closed");
        assert_eq!(open.num_open(), 4);
    }

    #[test]
    fn mutual_recursion_opens_both() {
        let mut m = Module::new();
        let a = m.declare_func("a");
        let b_id = m.declare_func("b");
        {
            let mut b = FunctionBuilder::new("a");
            b.call_void(b_id, vec![]);
            b.ret(None);
            m.define_func(a, b.build());
        }
        {
            let mut b = FunctionBuilder::new("b");
            b.call_void(a, vec![]);
            b.ret(None);
            m.define_func(b_id, b.build());
        }
        let cg = CallGraph::build(&m);
        let scc = SccInfo::compute(&cg);
        let open = Openness::compute(&m, &cg, &scc);
        assert!(open.is_open(a) && open.is_open(b_id));
    }
}
