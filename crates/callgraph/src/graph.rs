//! Call-graph construction.

use ipra_ir::{Callee, FuncId, Inst, InstLoc, Module};

/// One call site inside a function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CallSite {
    /// Location of the call instruction.
    pub loc: InstLoc,
    /// Statically known target; `None` for indirect calls.
    pub target: Option<FuncId>,
}

/// The static call graph of a module.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Deduplicated direct callees per function.
    pub callees: Vec<Vec<FuncId>>,
    /// Deduplicated direct callers per function.
    pub callers: Vec<Vec<FuncId>>,
    /// All call sites per function, in block order.
    pub call_sites: Vec<Vec<CallSite>>,
    /// Whether each function contains at least one indirect call site.
    pub has_indirect_site: Vec<bool>,
    /// Whether each function's address is taken somewhere in the module.
    pub address_taken: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph of `module`.
    pub fn build(module: &Module) -> Self {
        let n = module.funcs.len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut call_sites: Vec<Vec<CallSite>> = vec![Vec::new(); n];
        let mut has_indirect_site = vec![false; n];

        for (id, f) in module.funcs.iter() {
            for (loc, inst) in f.inst_locs() {
                if let Inst::Call { callee, .. } = inst {
                    match callee {
                        Callee::Direct(t) => {
                            call_sites[id.index()].push(CallSite {
                                loc,
                                target: Some(*t),
                            });
                            if !callees[id.index()].contains(t) {
                                callees[id.index()].push(*t);
                            }
                            if !callers[t.index()].contains(&id) {
                                callers[t.index()].push(id);
                            }
                        }
                        Callee::Indirect(_) => {
                            call_sites[id.index()].push(CallSite { loc, target: None });
                            has_indirect_site[id.index()] = true;
                        }
                    }
                }
            }
        }

        CallGraph {
            callees,
            callers,
            call_sites,
            has_indirect_site,
            address_taken: module.address_taken(),
        }
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.callees.len()
    }

    /// Whether the graph has no functions.
    pub fn is_empty(&self) -> bool {
        self.callees.is_empty()
    }

    /// Direct callees of `f`.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// Direct callers of `f`.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_ir::builder::FunctionBuilder;

    fn three_level_module() -> (Module, FuncId, FuncId, FuncId) {
        let mut m = Module::new();
        let leaf = m.declare_func("leaf");
        let mid = m.declare_func("mid");
        let top = m.declare_func("top");
        {
            let mut b = FunctionBuilder::new("leaf");
            b.ret(Some(ipra_ir::Operand::Imm(1)));
            m.define_func(leaf, b.build());
        }
        {
            let mut b = FunctionBuilder::new("mid");
            let r = b.call(leaf, vec![]);
            let s = b.call(leaf, vec![]);
            let t = b.bin(ipra_ir::BinOp::Add, r, s);
            b.ret(Some(t.into()));
            m.define_func(mid, b.build());
        }
        {
            let mut b = FunctionBuilder::new("top");
            let r = b.call(mid, vec![]);
            b.print(r);
            b.ret(None);
            m.define_func(top, b.build());
        }
        m.main = Some(top);
        (m, leaf, mid, top)
    }

    #[test]
    fn edges_and_sites() {
        let (m, leaf, mid, top) = three_level_module();
        let cg = CallGraph::build(&m);
        assert_eq!(cg.callees(top), &[mid]);
        assert_eq!(cg.callees(mid), &[leaf], "duplicate edges are collapsed");
        assert_eq!(cg.call_sites[mid.index()].len(), 2, "both call sites kept");
        assert_eq!(cg.callers(leaf), &[mid]);
        assert_eq!(cg.callers(top), &[] as &[FuncId]);
        assert!(!cg.has_indirect_site[top.index()]);
    }

    #[test]
    fn indirect_sites_flagged() {
        let mut m = Module::new();
        let f = m.declare_func("f");
        {
            let mut b = FunctionBuilder::new("f");
            b.ret(None);
            m.define_func(f, b.build());
        }
        let mut b = FunctionBuilder::new("main");
        let p = b.func_addr(f);
        let _ = b.call_indirect(p, vec![]);
        b.ret(None);
        let main = m.add_func(b.build());
        m.main = Some(main);
        let cg = CallGraph::build(&m);
        assert!(cg.has_indirect_site[main.index()]);
        assert!(cg.address_taken[f.index()]);
        assert_eq!(cg.call_sites[main.index()][0].target, None);
    }
}
