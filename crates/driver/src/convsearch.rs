//! Calling-convention search: the Table 2 sensitivity study generalized
//! into a sweep (after Krause 2022, "Efficient Calling Conventions for
//! Irregular Architectures").
//!
//! A *shape* fixes the hardware — a pool of allocatable registers of a
//! given size with an argument-register budget — and each *point* of the
//! search picks a software convention for it: how many pool registers are
//! caller-saved (the rest callee-saved) and how many of those carry
//! arguments. Every point compiles the whole corpus under `-O3`, must
//! pass the static register-contract verifier (`ipra-verify`) and the
//! simulator's preservation checker, and must print exactly what the IR
//! reference interpreter prints; the per-point penalty surface
//! (save/restore and spill traffic, Eqs 3.5/3.6 cycles) is accumulated
//! through the `ipra-obs` metrics registry and rendered as a
//! deterministic JSON/markdown report, byte-identical across worker
//! counts and cache temperature.

use std::path::PathBuf;

use ipra_core::config::AllocOptions;
use ipra_ir::interp::{self, InterpOptions};
use ipra_ir::Module;
use ipra_machine::{MemClass, Target};
use ipra_obs::json::Json;
use ipra_obs::metrics::Metrics;

use crate::{compile_only, run_compiled, Config};

/// One register-file shape the search sweeps conventions over.
#[derive(Clone, Debug)]
pub struct ShapeSpec {
    /// Shape label used in reports and metric labels.
    pub name: String,
    /// Allocatable pool size.
    pub pool: usize,
    /// Largest argument-register count any point may use.
    pub max_args: usize,
}

/// The default shape set: the paper's 24-register MIPS-like pool and the
/// irregular 8-register embedded pool of the `embedded8` named target.
pub fn default_shapes() -> Vec<ShapeSpec> {
    vec![
        ShapeSpec {
            name: "mips24".into(),
            pool: 24,
            max_args: 4,
        },
        ShapeSpec {
            name: "embedded8".into(),
            pool: 8,
            max_args: 2,
        },
    ]
}

/// The `(caller, args)` grid for a shape, in deterministic sweep order.
///
/// The dense grid steps the caller-saved count across the whole pool and
/// crosses it with every distinct argument budget up to the shape's
/// maximum (arguments are caller-saved, so `args <= caller` always); the
/// sparse grid keeps three partitions and two argument budgets for smoke
/// tests and goldens.
pub fn grid_points(shape: &ShapeSpec, dense: bool) -> Vec<(usize, usize)> {
    let callers: Vec<usize> = if dense {
        let step = (shape.pool / 8).max(1);
        let mut v: Vec<usize> = (0..=shape.pool).step_by(step).collect();
        if v.last() != Some(&shape.pool) {
            v.push(shape.pool);
        }
        v
    } else {
        let mut v = vec![shape.pool / 3, (2 * shape.pool) / 3, shape.pool];
        v.dedup();
        v
    };
    let arg_budgets: Vec<usize> = if dense {
        [0usize, 1, 2, 4]
            .into_iter()
            .filter(|&a| a <= shape.max_args)
            .collect()
    } else {
        let mut v = vec![(shape.max_args / 2).max(1), shape.max_args];
        v.dedup();
        v
    };
    let mut points = Vec::new();
    for &caller in &callers {
        let mut prev = None;
        for &args in &arg_budgets {
            let args = args.min(caller);
            if prev == Some(args) {
                continue;
            }
            prev = Some(args);
            points.push((caller, args));
        }
    }
    points
}

/// One corpus program with its reference-interpreter oracle output.
#[derive(Clone, Debug)]
pub struct CorpusProgram {
    /// Program label used in reports.
    pub name: String,
    /// The compiled IR.
    pub module: Module,
    /// What the interpreter prints (the ground truth every point must
    /// reproduce).
    pub oracle: Vec<i64>,
}

/// Wraps a named module with its interpreter oracle.
///
/// # Errors
///
/// Returns a message when the reference interpreter traps on the program.
pub fn corpus_program(name: &str, module: Module) -> Result<CorpusProgram, String> {
    let oracle = interp::run_module_with(&module, InterpOptions::default())
        .map_err(|t| format!("{name}: interpreter oracle trapped: {t}"))?;
    Ok(CorpusProgram {
        name: name.to_string(),
        module,
        oracle: oracle.output,
    })
}

/// The bundled workload suite as a search corpus: all 13 programs, or the
/// three smallest under `small`.
///
/// # Errors
///
/// Returns a message when a workload fails to compile or its oracle run
/// traps (both would be repo bugs).
pub fn workload_corpus(small: bool) -> Result<Vec<CorpusProgram>, String> {
    let mut v = Vec::new();
    for w in ipra_workloads::all()
        .into_iter()
        .take(if small { 3 } else { usize::MAX })
    {
        let module = ipra_workloads::compile_workload(w).map_err(|e| format!("{}: {e}", w.name))?;
        v.push(corpus_program(w.name, module)?);
    }
    Ok(v)
}

/// Search knobs. `jobs`/`cache_dir` flow into the allocator options of
/// every point compile and must never change the report bytes.
#[derive(Clone, Debug, Default)]
pub struct SearchOptions {
    /// Wave-scheduler worker count per compile (0 = auto).
    pub jobs: usize,
    /// Incremental-cache directory shared by every point compile.
    pub cache_dir: Option<PathBuf>,
    /// Dense grid (the full Table-2-style surface) vs the sparse smoke
    /// grid.
    pub dense: bool,
}

/// The measured surface at one `(caller, args)` point.
#[derive(Clone, Debug)]
pub struct PointReport {
    /// Caller-saved registers (argument registers included).
    pub caller: usize,
    /// Callee-saved registers (`pool - caller`).
    pub callee: usize,
    /// Argument registers.
    pub args: usize,
    /// Whether every corpus compile passed the static verifier.
    pub verified: bool,
    /// Whether every corpus run matched the interpreter oracle.
    pub interp_match: bool,
    /// Total simulated cycles over the corpus.
    pub cycles: u64,
    /// Total register-usage penalty cycles (Eqs 3.5/3.6).
    pub penalty_cycles: u64,
    /// Save/restore loads + stores.
    pub sr_mem: u64,
    /// Spill loads + stores.
    pub spill_mem: u64,
    /// Scalar loads + stores.
    pub scalar_mem: u64,
    /// Dynamic calls executed.
    pub calls: u64,
}

/// The surface of one shape.
#[derive(Clone, Debug)]
pub struct ShapeReport {
    /// The shape swept.
    pub shape: ShapeSpec,
    /// One report per grid point, in sweep order.
    pub points: Vec<PointReport>,
    /// Index into `points` of the lowest-penalty fully-passing point.
    /// Ties (the penalty surface is flat across argument counts, which
    /// only move traffic between the argument area and registers) break
    /// by total cycles, then sweep order.
    pub best: usize,
}

/// The whole search result.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// Corpus program names, in sweep order.
    pub corpus: Vec<String>,
    /// One report per shape.
    pub shapes: Vec<ShapeReport>,
    /// Human-readable descriptions of every point/program failure.
    pub failures: Vec<String>,
    /// The metrics registry every surface number was accumulated through.
    pub metrics: Metrics,
}

fn point_label(shape: &str, caller: usize, args: usize) -> String {
    format!("{shape}/c{caller}a{args}")
}

/// Runs the sweep.
///
/// Every `(shape, point, program)` triple compiles under `-O3` for the
/// point's convention, is statically verified, simulated with the
/// preservation checker on, and compared against the program's oracle
/// output; failures are recorded (never panicked) so the report always
/// renders the full surface.
pub fn run_search(
    corpus: &[CorpusProgram],
    shapes: &[ShapeSpec],
    opts: &SearchOptions,
) -> SearchReport {
    let mut metrics = Metrics::default();
    let mut failures = Vec::new();
    let mut shape_reports = Vec::new();

    for shape in shapes {
        let mut points = Vec::new();
        for (caller, args) in grid_points(shape, opts.dense) {
            let label = point_label(&shape.name, caller, args);
            let target = Target::convention(shape.pool, caller, args);
            let mut alloc = AllocOptions::o3();
            alloc.jobs = opts.jobs;
            alloc.cache_dir = opts.cache_dir.clone();
            let config = Config {
                name: label.clone(),
                target,
                opts: alloc,
            };

            let mut verified = true;
            let mut interp_match = true;
            let mut cycles = 0u64;
            let mut penalty = 0u64;
            let mut sr_mem = 0u64;
            let mut spill_mem = 0u64;
            let mut scalar = 0u64;
            let mut calls = 0u64;
            for prog in corpus {
                let compiled = compile_only(&prog.module, &config);
                let violations = ipra_verify::verify_module(
                    &compiled.mmodule,
                    &config.target.regs,
                    &compiled.summaries,
                );
                if let Some(v) = violations.first() {
                    verified = false;
                    failures.push(format!("{label}/{}: static verify: {v}", prog.name));
                    continue;
                }
                let m = match run_compiled(&compiled, &config) {
                    Ok(m) => m,
                    Err(t) => {
                        interp_match = false;
                        failures.push(format!("{label}/{}: simulator trapped: {t}", prog.name));
                        continue;
                    }
                };
                if m.output != prog.oracle {
                    interp_match = false;
                    failures.push(format!(
                        "{label}/{}: output differs from the interpreter oracle",
                        prog.name
                    ));
                    continue;
                }
                cycles += m.stats.cycles;
                penalty += m.stats.penalty_cycles(&config.target.cost);
                sr_mem += m.stats.save_restore_mem();
                spill_mem += m.stats.loads(MemClass::Spill) + m.stats.stores(MemClass::Spill);
                scalar += m.stats.scalar_mem();
                calls += m.stats.calls;
            }

            // The penalty surface flows through the PR-6 metrics registry:
            // one labeled counter per quantity per point, so `trace-tool`
            // style consumers and the report reader see the same numbers.
            let labels: &[(&str, &str)] = &[("point", &label)];
            metrics.add_counter("convsearch.cycles", labels, cycles);
            metrics.add_counter("convsearch.penalty_cycles", labels, penalty);
            metrics.add_counter("convsearch.sr_mem", labels, sr_mem);
            metrics.add_counter("convsearch.spill_mem", labels, spill_mem);
            metrics.add_counter("convsearch.scalar_mem", labels, scalar);
            metrics.add_counter("convsearch.calls", labels, calls);
            metrics.add_counter(
                "convsearch.failed_points",
                labels,
                u64::from(!(verified && interp_match)),
            );

            points.push(PointReport {
                caller,
                callee: shape.pool - caller,
                args,
                verified,
                interp_match,
                cycles,
                penalty_cycles: penalty,
                sr_mem,
                spill_mem,
                scalar_mem: scalar,
                calls,
            });
        }

        let best = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.verified && p.interp_match)
            .min_by_key(|(_, p)| (p.penalty_cycles, p.cycles))
            .map(|(i, _)| i)
            .unwrap_or(0);
        shape_reports.push(ShapeReport {
            shape: shape.clone(),
            points,
            best,
        });
    }

    SearchReport {
        corpus: corpus.iter().map(|p| p.name.clone()).collect(),
        shapes: shape_reports,
        failures,
        metrics,
    }
}

impl SearchReport {
    /// Number of points across all shapes.
    pub fn num_points(&self) -> usize {
        self.shapes.iter().map(|s| s.points.len()).sum()
    }

    /// Points whose every program verified and matched the oracle.
    pub fn num_passing_points(&self) -> usize {
        self.shapes
            .iter()
            .flat_map(|s| &s.points)
            .filter(|p| p.verified && p.interp_match)
            .count()
    }

    /// Smallest per-shape point count (the Table-2 coverage floor).
    pub fn min_points_per_shape(&self) -> usize {
        self.shapes
            .iter()
            .map(|s| s.points.len())
            .min()
            .unwrap_or(0)
    }

    /// The deterministic JSON document (`BENCH_convsearch.json`).
    pub fn to_json(&self) -> Json {
        let shapes = self
            .shapes
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("caller", Json::Int(p.caller as i64)),
                            ("callee", Json::Int(p.callee as i64)),
                            ("args", Json::Int(p.args as i64)),
                            ("verified", Json::Bool(p.verified)),
                            ("interp_match", Json::Bool(p.interp_match)),
                            ("cycles", Json::Int(p.cycles as i64)),
                            ("penalty_cycles", Json::Int(p.penalty_cycles as i64)),
                            ("sr_mem", Json::Int(p.sr_mem as i64)),
                            ("spill_mem", Json::Int(p.spill_mem as i64)),
                            ("scalar_mem", Json::Int(p.scalar_mem as i64)),
                            ("calls", Json::Int(p.calls as i64)),
                        ])
                    })
                    .collect();
                let b = &s.points[s.best];
                Json::obj(vec![
                    ("shape", Json::Str(s.shape.name.clone())),
                    ("pool", Json::Int(s.shape.pool as i64)),
                    ("max_args", Json::Int(s.shape.max_args as i64)),
                    (
                        "best",
                        Json::obj(vec![
                            ("caller", Json::Int(b.caller as i64)),
                            ("callee", Json::Int(b.callee as i64)),
                            ("args", Json::Int(b.args as i64)),
                            ("penalty_cycles", Json::Int(b.penalty_cycles as i64)),
                        ]),
                    ),
                    ("points", Json::Arr(points)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("bench", Json::Str("convsearch".into())),
            (
                "corpus",
                Json::Arr(self.corpus.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "total",
                Json::obj(vec![
                    ("shapes", Json::Int(self.shapes.len() as i64)),
                    ("points", Json::Int(self.num_points() as i64)),
                    (
                        "passing_points",
                        Json::Int(self.num_passing_points() as i64),
                    ),
                    (
                        "min_points_per_shape",
                        Json::Int(self.min_points_per_shape() as i64),
                    ),
                    ("failures", Json::Int(self.failures.len() as i64)),
                ]),
            ),
            ("shapes", Json::Arr(shapes)),
            (
                "failures",
                Json::Arr(self.failures.iter().cloned().map(Json::Str).collect()),
            ),
            ("metrics", self.metrics.to_json()),
        ])
    }

    /// The Table-2-style markdown rendering of the penalty surface.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# Convention-search penalty surface");
        let _ = writeln!(out);
        let _ = writeln!(out, "Corpus: {}.", self.corpus.join(", "));
        for s in &self.shapes {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "## Shape `{}` — pool {}, up to {} argument registers",
                s.shape.name, s.shape.pool, s.shape.max_args
            );
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "| caller | callee | args | penalty cycles | cycles | sr l/s | spill l/s | scalar l/s | ok |"
            );
            let _ = writeln!(
                out,
                "|-------:|-------:|-----:|---------------:|-------:|-------:|----------:|-----------:|:---|"
            );
            for (i, p) in s.points.iter().enumerate() {
                let ok = if !(p.verified && p.interp_match) {
                    "FAIL"
                } else if i == s.best {
                    "best"
                } else {
                    "yes"
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                    p.caller,
                    p.callee,
                    p.args,
                    p.penalty_cycles,
                    p.cycles,
                    p.sr_mem,
                    p.spill_mem,
                    p.scalar_mem,
                    ok
                );
            }
        }
        if !self.failures.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "## Failures");
            let _ = writeln!(out);
            for f in &self.failures {
                let _ = writeln!(out, "- {f}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_grids_cover_at_least_twelve_points_per_shape() {
        for shape in default_shapes() {
            let pts = grid_points(&shape, true);
            assert!(pts.len() >= 12, "{}: only {} points", shape.name, pts.len());
            // Every point is a legal convention, and no duplicates.
            let mut seen = std::collections::HashSet::new();
            for &(caller, args) in &pts {
                assert!(caller <= shape.pool);
                assert!(args <= caller && args <= shape.max_args);
                assert!(seen.insert((caller, args)), "duplicate point");
            }
            // The partition axis reaches both extremes.
            assert!(pts.iter().any(|&(c, _)| c == 0));
            assert!(pts.iter().any(|&(c, _)| c == shape.pool));
        }
    }

    #[test]
    fn sparse_sweep_passes_and_renders_deterministically() {
        let corpus = vec![corpus_program(
            "demo",
            ipra_frontend::compile(
                "fn f(a: int, b: int, c: int) -> int { return a * b - c; }\
                 fn main() { var i: int = 0; var s: int = 0;\
                 while i < 9 { s = s + f(i, s, 3); i = i + 1; } print(s); }",
            )
            .unwrap(),
        )
        .unwrap()];
        let shapes = vec![ShapeSpec {
            name: "tiny6".into(),
            pool: 6,
            max_args: 2,
        }];
        let opts = SearchOptions::default();
        let r1 = run_search(&corpus, &shapes, &opts);
        assert!(r1.failures.is_empty(), "{:?}", r1.failures);
        assert_eq!(r1.num_points(), r1.num_passing_points());
        let jobs4 = SearchOptions {
            jobs: 4,
            ..SearchOptions::default()
        };
        let r2 = run_search(&corpus, &shapes, &jobs4);
        assert_eq!(
            r1.to_json().render_pretty(),
            r2.to_json().render_pretty(),
            "report depends on worker count"
        );
        assert_eq!(r1.to_markdown(), r2.to_markdown());
        let md = r1.to_markdown();
        assert!(md.contains("Shape `tiny6`"), "{md}");
    }
}
