//! Analysis of `--trace-json` documents: the library behind `trace-tool`.
//!
//! Every subcommand works on the [`CompileTrace`](crate::CompileTrace)
//! JSON schema: [`load`] lifts a parsed document into a [`TraceDoc`]
//! (functions, penalty edges, cache outcome, totals), and the report
//! builders are pure string-producing functions, so everything here is
//! unit-testable without touching the filesystem.
//!
//! The regression gate ([`diff`]) deliberately compares only the
//! *deterministic* simulator quantities — penalty cycles, save/restore
//! traffic, total cycles — never wall-clock phase times: diffing a trace
//! against itself is exactly zero regressions, and CI can gate on it
//! without flakiness.

use ipra_obs::json::Json;

/// One pipeline phase of one function (tree; durations in ns).
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Phase name.
    pub name: String,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nested sub-phases.
    pub children: Vec<Phase>,
}

impl Phase {
    /// Self time: duration minus children (clamped at 0 — children are
    /// wall-clock sub-intervals, but guard against clock skew anyway).
    pub fn self_ns(&self) -> u64 {
        self.dur_ns
            .saturating_sub(self.children.iter().map(|c| c.dur_ns).sum())
    }
}

/// Per-function view of a trace document.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncRow {
    /// Function name.
    pub name: String,
    /// Top-level pipeline phases.
    pub phases: Vec<Phase>,
    /// Total compile time (sum of top-level phase durations), ns.
    pub compile_ns: u64,
    /// Dynamic save/restore memory operations this function executed.
    pub sr_mem: u64,
    /// Dynamic cycles charged to this function.
    pub cycles: u64,
}

/// Per-edge view of the penalty ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeRow {
    /// Calling function (`<entry>` for the program-entry edge).
    pub caller: String,
    /// Called function.
    pub callee: String,
    /// Times the edge was taken.
    pub calls: u64,
    /// Save/restore loads + stores on this edge.
    pub sr_mem: u64,
    /// Spill loads + stores on this edge.
    pub spill_mem: u64,
    /// Penalty cycles on this edge.
    pub penalty_cycles: u64,
    /// Statically planned caller-side save registers.
    pub static_save_regs: u64,
}

impl EdgeRow {
    /// `caller -> callee`, the key used in reports and diffs.
    pub fn key(&self) -> String {
        format!("{} -> {}", self.caller, self.callee)
    }
}

/// Incremental-cache outcome of the compile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheRow {
    /// Components replayed from the cache.
    pub hits: u64,
    /// Components compiled fresh.
    pub misses: u64,
    /// Hits whose direct callee was recompiled (early cutoffs).
    pub cutoffs: u64,
    /// Names of recompiled functions.
    pub recompiled: Vec<String>,
}

/// Aggregate totals of a trace document.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Totals {
    /// Simulated cycles (0 when the program was not run).
    pub cycles: u64,
    /// Aggregate penalty cycles.
    pub penalty_cycles: u64,
    /// Aggregate save/restore memory operations.
    pub sr_mem: u64,
    /// Total compile time across functions, ns.
    pub compile_ns: u64,
}

/// A loaded trace document.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceDoc {
    /// Configuration label.
    pub config: String,
    /// Per-function rows, in document order.
    pub funcs: Vec<FuncRow>,
    /// Penalty ledger rows, in document order.
    pub edges: Vec<EdgeRow>,
    /// Cache outcome, when the compile used a cache.
    pub cache: Option<CacheRow>,
    /// Aggregates.
    pub totals: Totals,
}

fn get_u64(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_i64).unwrap_or(0).max(0) as u64
}

fn get_str(j: &Json, key: &str) -> String {
    j.get(key).and_then(Json::as_str).unwrap_or("?").to_string()
}

fn parse_phase(j: &Json) -> Phase {
    Phase {
        name: get_str(j, "name"),
        dur_ns: get_u64(j, "dur_ns"),
        children: j
            .get("children")
            .and_then(Json::as_arr)
            .map(|cs| cs.iter().map(parse_phase).collect())
            .unwrap_or_default(),
    }
}

/// Lifts a parsed `--trace-json` document into a [`TraceDoc`].
///
/// # Errors
///
/// Returns a message when the document lacks the schema's required
/// members (`config`, `functions`).
pub fn load(doc: &Json) -> Result<TraceDoc, String> {
    let config = doc
        .get("config")
        .and_then(Json::as_str)
        .ok_or("not a trace document: no `config` member")?
        .to_string();
    let funcs_json = doc
        .get("functions")
        .and_then(Json::as_arr)
        .ok_or("not a trace document: no `functions` array")?;

    let funcs: Vec<FuncRow> = funcs_json
        .iter()
        .map(|f| {
            let phases: Vec<Phase> = f
                .get("phases")
                .and_then(Json::as_arr)
                .map(|ps| ps.iter().map(parse_phase).collect())
                .unwrap_or_default();
            let compile_ns = phases.iter().map(|p| p.dur_ns).sum();
            let (sr_mem, cycles) = f
                .get("sim")
                .map(|s| (get_u64(s, "save_restore_mem"), get_u64(s, "cycles")))
                .unwrap_or((0, 0));
            FuncRow {
                name: get_str(f, "name"),
                phases,
                compile_ns,
                sr_mem,
                cycles,
            }
        })
        .collect();

    let edges: Vec<EdgeRow> = doc
        .get("penalty_by_edge")
        .and_then(Json::as_arr)
        .map(|es| {
            es.iter()
                .map(|e| EdgeRow {
                    caller: get_str(e, "caller"),
                    callee: get_str(e, "callee"),
                    calls: get_u64(e, "calls"),
                    sr_mem: get_u64(e, "sr_loads") + get_u64(e, "sr_stores"),
                    spill_mem: get_u64(e, "spill_loads") + get_u64(e, "spill_stores"),
                    penalty_cycles: get_u64(e, "penalty_cycles"),
                    static_save_regs: get_u64(e, "static_save_regs"),
                })
                .collect()
        })
        .unwrap_or_default();

    let cache = doc.get("cache").map(|c| CacheRow {
        hits: get_u64(c, "hits"),
        misses: get_u64(c, "misses"),
        cutoffs: get_u64(c, "cutoffs"),
        recompiled: c
            .get("recompiled")
            .and_then(Json::as_arr)
            .map(|r| {
                r.iter()
                    .filter_map(|n| n.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default(),
    });

    let totals = Totals {
        cycles: doc.get("sim").map_or(0, |s| get_u64(s, "cycles")),
        penalty_cycles: doc.get("sim").map_or(0, |s| get_u64(s, "penalty_cycles")),
        sr_mem: doc.get("sim").map_or(0, |s| {
            get_u64(s, "save_restore_loads") + get_u64(s, "save_restore_stores")
        }),
        compile_ns: funcs.iter().map(|f| f.compile_ns).sum(),
    };

    Ok(TraceDoc {
        config,
        funcs,
        edges,
        cache,
        totals,
    })
}

/// Ranking key for [`top_report`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopBy {
    /// Hottest by register-usage penalty (save/restore traffic).
    Penalty,
    /// Hottest by compile wall-clock time.
    Time,
}

/// The `top` report: hottest functions and call edges under `by`,
/// limited to `n` rows each.
pub fn top_report(doc: &TraceDoc, by: TopBy, n: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== trace-tool top [{}] ==", doc.config);
    let _ = writeln!(
        out,
        "totals: {} cycles, {} penalty cycles, {} sr mem ops, {} µs compile",
        doc.totals.cycles,
        doc.totals.penalty_cycles,
        doc.totals.sr_mem,
        doc.totals.compile_ns / 1000
    );

    let mut funcs: Vec<&FuncRow> = doc.funcs.iter().collect();
    match by {
        TopBy::Penalty => {
            funcs.sort_by(|a, b| (b.sr_mem, b.cycles, &a.name).cmp(&(a.sr_mem, a.cycles, &b.name)))
        }
        TopBy::Time => funcs.sort_by(|a, b| (b.compile_ns, &a.name).cmp(&(a.compile_ns, &b.name))),
    }
    let _ = writeln!(out, "functions:");
    for f in funcs.iter().take(n) {
        let _ = writeln!(
            out,
            "  {:<24} {:>10} sr mem  {:>12} cycles  {:>9} ns compile",
            f.name, f.sr_mem, f.cycles, f.compile_ns
        );
    }

    if !doc.edges.is_empty() {
        let mut edges: Vec<&EdgeRow> = doc.edges.iter().collect();
        edges.sort_by(|a, b| {
            (b.penalty_cycles, b.sr_mem, a.key()).cmp(&(a.penalty_cycles, a.sr_mem, b.key()))
        });
        let _ = writeln!(out, "edges:");
        for e in edges.iter().take(n) {
            let _ = writeln!(
                out,
                "  {:<32} {:>8} penalty cycles  {:>8} sr  {:>6} spill  {:>8} calls",
                e.key(),
                e.penalty_cycles,
                e.sr_mem,
                e.spill_mem,
                e.calls
            );
        }
    }
    out
}

/// Options for [`diff`].
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// A quantity regresses when it grows by more than this percentage.
    pub threshold_pct: f64,
    /// ...and by at least this many absolute units (filters noise on tiny
    /// baselines, where one extra op is a huge percentage).
    pub min_abs: u64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            threshold_pct: 10.0,
            min_abs: 1,
        }
    }
}

/// The outcome of comparing two traces.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Human-readable report.
    pub text: String,
    /// Quantities that regressed past the threshold.
    pub regressions: Vec<String>,
}

fn pct_change(old: u64, new: u64) -> f64 {
    if old == 0 {
        if new == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new as f64 - old as f64) / old as f64 * 100.0
    }
}

/// Compares two traces on their deterministic penalty quantities.
///
/// Checked: total penalty cycles / save-restore traffic / cycles,
/// per-function save/restore traffic, per-edge penalty cycles (edges
/// present only in `new` count with an old value of 0). Wall-clock phase
/// times are reported for context but never gate — so a trace diffed
/// against itself always yields zero regressions.
pub fn diff(old: &TraceDoc, new: &TraceDoc, opts: &DiffOptions) -> DiffReport {
    use std::fmt::Write as _;
    let mut text = String::new();
    let mut regressions = Vec::new();
    let _ = writeln!(
        text,
        "== trace-tool diff [{} -> {}] (threshold {:.1}%) ==",
        old.config, new.config, opts.threshold_pct
    );

    let check = |what: &str, o: u64, n: u64, regs: &mut Vec<String>, text: &mut String| {
        let delta = pct_change(o, n);
        let regressed = n > o && n - o >= opts.min_abs && delta > opts.threshold_pct;
        if regressed {
            regs.push(what.to_string());
        }
        if o != n || regressed {
            let _ = writeln!(
                text,
                "  {} {what}: {o} -> {n} ({:+.1}%)",
                if regressed { "REGRESSED" } else { "changed " },
                delta
            );
        }
    };

    check(
        "total penalty_cycles",
        old.totals.penalty_cycles,
        new.totals.penalty_cycles,
        &mut regressions,
        &mut text,
    );
    check(
        "total save_restore_mem",
        old.totals.sr_mem,
        new.totals.sr_mem,
        &mut regressions,
        &mut text,
    );
    check(
        "total cycles",
        old.totals.cycles,
        new.totals.cycles,
        &mut regressions,
        &mut text,
    );

    for nf in &new.funcs {
        let of = old.funcs.iter().find(|f| f.name == nf.name);
        check(
            &format!("fn {} save_restore_mem", nf.name),
            of.map_or(0, |f| f.sr_mem),
            nf.sr_mem,
            &mut regressions,
            &mut text,
        );
    }
    for ne in &new.edges {
        let oe = old
            .edges
            .iter()
            .find(|e| e.caller == ne.caller && e.callee == ne.callee);
        check(
            &format!("edge {} penalty_cycles", ne.key()),
            oe.map_or(0, |e| e.penalty_cycles),
            ne.penalty_cycles,
            &mut regressions,
            &mut text,
        );
    }

    // Context only — compile time is wall clock and never gates.
    let _ = writeln!(
        text,
        "  (info) compile time: {} µs -> {} µs",
        old.totals.compile_ns / 1000,
        new.totals.compile_ns / 1000
    );
    let _ = writeln!(text, "{} regression(s) past threshold", regressions.len());
    DiffReport { text, regressions }
}

/// The `cache` report: hit/miss/cutoff breakdown.
///
/// # Errors
///
/// Returns a message when the trace was compiled without a cache.
pub fn cache_report(doc: &TraceDoc) -> Result<String, String> {
    use std::fmt::Write as _;
    let c = doc
        .cache
        .as_ref()
        .ok_or("trace has no cache section (compile ran without --cache-dir)")?;
    let mut out = String::new();
    let total = c.hits + c.misses;
    let _ = writeln!(out, "== trace-tool cache [{}] ==", doc.config);
    let _ = writeln!(out, "  lookups: {total}");
    let rate = |n: u64| {
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64 * 100.0
        }
    };
    let _ = writeln!(out, "  hits:    {:>6}  ({:.1}%)", c.hits, rate(c.hits));
    let _ = writeln!(out, "  misses:  {:>6}  ({:.1}%)", c.misses, rate(c.misses));
    let _ = writeln!(
        out,
        "  cutoffs: {:>6}  (early cutoffs among hits)",
        c.cutoffs
    );
    if !c.recompiled.is_empty() {
        let _ = writeln!(out, "  recompiled: {}", c.recompiled.join(", "));
    }
    Ok(out)
}

/// True when `doc` is a metrics-registry document (the shape of
/// [`ipra_obs::metrics::Metrics::to_json`], as served by `mini-ccd`'s
/// `metrics` command and saved by `mini-cc --remote --emit metrics`)
/// rather than a compile trace.
pub fn is_metrics_doc(doc: &Json) -> bool {
    doc.get("counters").and_then(Json::as_arr).is_some()
        && doc.get("histograms").and_then(Json::as_arr).is_some()
        && doc.get("functions").is_none()
}

fn metric_label(inst: &Json) -> String {
    let name = get_str(inst, "name");
    let labels = inst
        .get("labels")
        .and_then(Json::as_obj)
        .map(|pairs| {
            pairs
                .iter()
                .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                .collect::<Vec<_>>()
                .join(",")
        })
        .unwrap_or_default();
    if labels.is_empty() {
        name
    } else {
        format!("{name}{{{labels}}}")
    }
}

/// Upper estimate of the q-quantile from a serialized log₂ histogram —
/// the JSON mirror of `Log2Histogram::quantile_upper`.
fn histogram_quantile(value: &Json, q: f64) -> u64 {
    let count = get_u64(value, "count");
    if count == 0 {
        return 0;
    }
    let max = get_u64(value, "max");
    let want = (q.clamp(0.0, 1.0) * count as f64).ceil() as u64;
    let mut seen = 0u64;
    if let Some(buckets) = value.get("buckets").and_then(Json::as_arr) {
        for b in buckets {
            let c = get_u64(b, "count");
            seen += c;
            if c > 0 && seen >= want {
                return max.min(get_u64(b, "hi").saturating_sub(1));
            }
        }
    }
    max
}

/// The `top` report for a metrics document: counters ranked by value,
/// gauges, and histograms with count/mean/p50/p99/max — `n` rows per
/// section.
pub fn metrics_report(doc: &Json, n: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== trace-tool metrics ==");

    let mut counters: Vec<&Json> = doc
        .get("counters")
        .and_then(Json::as_arr)
        .map(|a| a.iter().collect())
        .unwrap_or_default();
    counters.sort_by_key(|c| std::cmp::Reverse(get_u64(c, "value")));
    if !counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for c in counters.iter().take(n) {
            let _ = writeln!(out, "  {:<56} {:>12}", metric_label(c), get_u64(c, "value"));
        }
    }

    let gauges = doc.get("gauges").and_then(Json::as_arr).unwrap_or(&[]);
    if !gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for g in gauges.iter().take(n) {
            let _ = writeln!(
                out,
                "  {:<56} {:>12}",
                metric_label(g),
                g.get("value").and_then(Json::as_i64).unwrap_or(0)
            );
        }
    }

    let histograms = doc.get("histograms").and_then(Json::as_arr).unwrap_or(&[]);
    if !histograms.is_empty() {
        let _ = writeln!(out, "histograms:");
        for h in histograms.iter().take(n) {
            let v = h.get("value").cloned().unwrap_or(Json::Null);
            let count = get_u64(&v, "count");
            let mean = if count == 0 {
                0.0
            } else {
                get_u64(&v, "sum") as f64 / count as f64
            };
            let _ = writeln!(
                out,
                "  {:<40} count {:>8}  mean {:>10.1}  p50 <= {:>8}  p99 <= {:>8}  max {:>8}",
                metric_label(h),
                count,
                mean,
                histogram_quantile(&v, 0.50),
                histogram_quantile(&v, 0.99),
                get_u64(&v, "max")
            );
        }
    }
    out
}

/// Collapsed-stack output for `flamegraph.pl`: one line per phase-tree
/// node, `func;phase;subphase <self-time-ns>`.
pub fn flame(doc: &TraceDoc) -> String {
    fn walk(out: &mut String, stack: &mut Vec<String>, p: &Phase) {
        stack.push(p.name.clone());
        out.push_str(&stack.join(";"));
        out.push(' ');
        out.push_str(&p.self_ns().to_string());
        out.push('\n');
        for c in &p.children {
            walk(out, stack, c);
        }
        stack.pop();
    }
    let mut out = String::new();
    for f in &doc.funcs {
        let mut stack = vec![f.name.clone()];
        for p in &f.phases {
            walk(&mut out, &mut stack, p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipra_obs::json::parse;

    fn doc(penalty: u64, helper_sr: u64) -> TraceDoc {
        let text = format!(
            r#"{{
              "config": "C",
              "functions": [
                {{"name": "helper",
                  "phases": [{{"name": "ranges", "dur_ns": 300, "children": [
                      {{"name": "ranges.live", "dur_ns": 100, "children": []}}]}},
                    {{"name": "color", "dur_ns": 700, "children": []}}],
                  "sim": {{"cycles": 900, "save_restore_mem": {helper_sr}}}}},
                {{"name": "main",
                  "phases": [{{"name": "ranges", "dur_ns": 4000, "children": []}}],
                  "sim": {{"cycles": 2000, "save_restore_mem": 2}}}}
              ],
              "sim": {{"cycles": 2900, "penalty_cycles": {penalty},
                      "save_restore_loads": 3, "save_restore_stores": 3}},
              "penalty_by_edge": [
                {{"caller": "main", "callee": "helper", "calls": 20,
                  "sr_loads": 2, "sr_stores": 2, "spill_loads": 0, "spill_stores": 1,
                  "penalty_cycles": {penalty}, "static_save_regs": 1}},
                {{"caller": "<entry>", "callee": "main", "calls": 0,
                  "sr_loads": 1, "sr_stores": 1, "spill_loads": 0, "spill_stores": 0,
                  "penalty_cycles": 3, "static_save_regs": 0}}
              ],
              "cache": {{"hits": 3, "misses": 1, "cutoffs": 1, "recompiled": ["helper"]}}
            }}"#
        );
        load(&parse(&text).unwrap()).unwrap()
    }

    #[test]
    fn load_extracts_rows_and_totals() {
        let d = doc(10, 4);
        assert_eq!(d.config, "C");
        assert_eq!(d.funcs.len(), 2);
        assert_eq!(d.funcs[0].compile_ns, 1000, "top-level phases only");
        assert_eq!(d.edges.len(), 2);
        assert_eq!(d.edges[0].sr_mem, 4);
        assert_eq!(d.edges[0].spill_mem, 1);
        assert_eq!(d.totals.sr_mem, 6);
        assert_eq!(d.totals.compile_ns, 5000);
        assert_eq!(d.cache.as_ref().unwrap().hits, 3);
        assert!(load(&parse("{\"x\": 1}").unwrap()).is_err());
    }

    #[test]
    fn top_ranks_by_penalty_and_time() {
        let d = doc(10, 4);
        let by_pen = top_report(&d, TopBy::Penalty, 10);
        let helper_pos = by_pen.find("  helper").unwrap();
        let main_pos = by_pen.find("  main").unwrap();
        assert!(helper_pos < main_pos, "helper pays more penalty");
        assert!(by_pen.contains("main -> helper"));

        // `main` compiles slower, so ranking by time reverses the order.
        let by_time = top_report(&d, TopBy::Time, 10);
        let helper_pos = by_time.find("  helper").unwrap();
        let main_pos = by_time.find("  main").unwrap();
        assert!(main_pos < helper_pos, "main compiles slower");
    }

    #[test]
    fn self_identical_diff_has_zero_regressions() {
        let d = doc(10, 4);
        let r = diff(&d, &d, &DiffOptions::default());
        assert!(r.regressions.is_empty(), "{}", r.text);
    }

    #[test]
    fn planted_ten_percent_regression_is_flagged() {
        let old = doc(100, 4);
        let new = doc(112, 4); // +12% penalty cycles
        let r = diff(&old, &new, &DiffOptions::default());
        assert!(
            r.regressions.iter().any(|s| s.contains("penalty_cycles")),
            "{}",
            r.text
        );
        // Below threshold: not flagged.
        let small = doc(105, 4); // +5%
        let r = diff(&old, &small, &DiffOptions::default());
        assert!(r.regressions.is_empty(), "{}", r.text);
    }

    #[test]
    fn new_function_regression_counts_from_zero_baseline() {
        let old = doc(10, 0);
        let new = doc(10, 4);
        let r = diff(&old, &new, &DiffOptions::default());
        assert!(
            r.regressions.iter().any(|s| s.contains("fn helper")),
            "{}",
            r.text
        );
    }

    #[test]
    fn cache_report_breaks_down_lookups() {
        let d = doc(10, 4);
        let r = cache_report(&d).unwrap();
        assert!(r.contains("hits:"));
        assert!(r.contains("75.0%"));
        let mut no_cache = d.clone();
        no_cache.cache = None;
        assert!(cache_report(&no_cache).is_err());
    }

    #[test]
    fn metrics_documents_are_detected_and_reported() {
        let text = r#"{
          "counters": [
            {"name": "service.requests",
             "labels": {"cmd": "compile", "status": "ok"}, "value": 26},
            {"name": "service.busy_rejections", "labels": {}, "value": 2}
          ],
          "gauges": [
            {"name": "service.queue_depth", "labels": {}, "value": 3}
          ],
          "histograms": [
            {"name": "service.request_micros", "labels": {"cmd": "compile"},
             "value": {"count": 4, "sum": 1000, "max": 700, "buckets": [
               {"lo": 64, "hi": 128, "count": 2},
               {"lo": 512, "hi": 1024, "count": 2}]}}
          ]
        }"#;
        let doc = parse(text).unwrap();
        assert!(is_metrics_doc(&doc));
        assert!(!is_metrics_doc(&parse("{\"functions\": []}").unwrap()));
        let r = metrics_report(&doc, 10);
        assert!(r.contains("service.requests{cmd=compile,status=ok}"), "{r}");
        // Counters rank by value: requests (26) above busy_rejections (2).
        assert!(
            r.find("service.requests").unwrap() < r.find("service.busy_rejections").unwrap(),
            "{r}"
        );
        assert!(r.contains("service.queue_depth"), "{r}");
        // p50 falls in [64,128) -> <= 127; p99 in the top bucket, capped
        // at the observed max.
        assert!(r.contains("p50 <=      127"), "{r}");
        assert!(r.contains("p99 <=      700"), "{r}");
        assert!(r.contains("mean      250.0"), "{r}");
    }

    #[test]
    fn flame_emits_collapsed_stacks_with_self_time() {
        let d = doc(10, 4);
        let f = flame(&d);
        assert!(f.contains("helper;ranges 200\n"), "{f}");
        assert!(f.contains("helper;ranges;ranges.live 100\n"));
        assert!(f.contains("helper;color 700\n"));
        assert!(f.contains("main;ranges 4000\n"));
    }
}
