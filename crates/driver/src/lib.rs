//! # ipra-driver — compilation pipeline and measurement harness
//!
//! Ties the whole reproduction together: Mini source → IR → register
//! allocation under a named configuration → machine code → simulation with
//! convention checking → the measurements the paper reports (cycles, scalar
//! loads/stores, cycles per call).
//!
//! ```
//! use ipra_driver::{compile_and_run, Config};
//!
//! let module = ipra_frontend::compile(
//!     "fn sq(x: int) -> int { return x * x; } fn main() { print(sq(9)); }",
//! )?;
//! let m = compile_and_run(&module, &Config::o3()).unwrap();
//! assert_eq!(m.output, vec![81]);
//! # Ok::<(), ipra_frontend::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod convsearch;
pub mod differential;
pub mod profile;
pub mod service;
pub mod trace;
pub mod tracetool;

use ipra_core::config::AllocOptions;
use ipra_core::ipra::{compile_module, compile_module_with_profile, CompiledModule};
use ipra_ir::Module;
use ipra_machine::Target;
use ipra_sim::{SimOptions, SimTrap, Stats};

pub use ipra_core::config::AllocMode;
pub use ipra_sim::percent_reduction;
pub use profile::{profile_from_json, profile_to_json};
pub use trace::CompileTrace;

/// A named compilation configuration (target + allocator options).
#[derive(Clone, Debug)]
pub struct Config {
    /// Short label used in tables.
    pub name: String,
    /// Target machine.
    pub target: Target,
    /// Allocator options.
    pub opts: AllocOptions,
}

impl Config {
    /// The paper's baseline: `-O2`, shrink-wrap disabled.
    pub fn o2_base() -> Self {
        Config {
            name: "base".into(),
            target: Target::mips_like(),
            opts: AllocOptions::o2_base(),
        }
    }

    /// Table 1 column A: `-O2` with shrink-wrap.
    pub fn a() -> Self {
        Config {
            name: "A".into(),
            target: Target::mips_like(),
            opts: AllocOptions::o2_shrink_wrap(),
        }
    }

    /// Table 1 column B: `-O3` without shrink-wrap.
    pub fn b() -> Self {
        Config {
            name: "B".into(),
            target: Target::mips_like(),
            opts: AllocOptions::o3_no_shrink_wrap(),
        }
    }

    /// Table 1 column C: `-O3` with shrink-wrap.
    pub fn c() -> Self {
        Config {
            name: "C".into(),
            target: Target::mips_like(),
            opts: AllocOptions::o3(),
        }
    }

    /// Alias for [`Config::c`].
    pub fn o3() -> Self {
        Self::c()
    }

    /// Table 2 column D: like C but only 7 caller-saved registers.
    pub fn d() -> Self {
        Config {
            name: "D".into(),
            target: Target::with_class_limits(7, 0),
            opts: AllocOptions::o3(),
        }
    }

    /// Table 2 column E: like C but only 7 callee-saved registers.
    pub fn e() -> Self {
        Config {
            name: "E".into(),
            target: Target::with_class_limits(0, 7),
            opts: AllocOptions::o3(),
        }
    }

    /// The no-register-allocation oracle.
    pub fn no_alloc() -> Self {
        Config {
            name: "noalloc".into(),
            target: Target::mips_like(),
            opts: AllocOptions::no_alloc(),
        }
    }

    /// The "inline without IPRA" ablation leg: configuration A (`-O2`
    /// with shrink-wrap) plus the profile-guided inliner. The `inline/`
    /// name prefix is load-bearing: the fuzz reducer keys failures by
    /// config name, so inline-leg failures minimize as `inline/<config>`
    /// pseudo-configs.
    pub fn inline_a() -> Self {
        Config {
            name: "inline/A".into(),
            target: Target::mips_like(),
            opts: AllocOptions::o2_shrink_wrap().with_inline(true),
        }
    }

    /// The "inline + IPRA" ablation leg: configuration C (`-O3` with
    /// shrink-wrap) plus the profile-guided inliner.
    pub fn inline_c() -> Self {
        Config {
            name: "inline/C".into(),
            target: Target::mips_like(),
            opts: AllocOptions::o3().with_inline(true),
        }
    }
}

/// The result of compiling and simulating one program under one config.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Configuration label.
    pub config: String,
    /// Dynamic counts from the simulator.
    pub stats: Stats,
    /// Program output (for cross-config equality checks).
    pub output: Vec<i64>,
    /// Compile/execution trace, when collected (see
    /// [`compile_and_run_traced`]); `None` otherwise, at zero cost.
    pub trace: Option<CompileTrace>,
}

impl Measurement {
    /// Scalar loads + stores (Table 1 column II's quantity).
    pub fn scalar_mem(&self) -> u64 {
        self.stats.scalar_mem()
    }

    /// Total cycles (Table 1 column I's quantity).
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }
}

/// Compiles `module` under `config` and simulates it with the convention
/// checker enabled.
///
/// # Errors
///
/// Returns the simulator trap, including convention violations (which would
/// indicate an allocator bug).
pub fn compile_and_run(module: &Module, config: &Config) -> Result<Measurement, SimTrap> {
    let compiled = compile_module(module, &config.target, &config.opts);
    run_compiled(&compiled, config)
}

/// Compiles without running (for inspection: assembly, reports).
pub fn compile_only(module: &Module, config: &Config) -> CompiledModule {
    compile_module(module, &config.target, &config.opts)
}

/// Profile-guided compilation (the paper's §8 future work): compile once,
/// run to collect per-block execution counts, then recompile with the
/// measured profile feeding the priority function and re-measure.
///
/// # Errors
///
/// Returns the simulator trap of either run.
pub fn profile_guided(module: &Module, config: &Config) -> Result<Measurement, SimTrap> {
    // Training run.
    let compiled = compile_module(module, &config.target, &config.opts);
    let sim_opts = SimOptions::for_target(&config.target.regs)
        .check_preservation(compiled.clobber_masks.clone())
        .with_block_profile();
    let trained = ipra_sim::run(&compiled.mmodule, &config.target.regs, &sim_opts)?;
    let profile = trained.block_profile.expect("profile requested");

    // Feedback run.
    let compiled =
        compile_module_with_profile(module, &config.target, &config.opts, Some(&profile));
    let sim_opts = SimOptions::for_target(&config.target.regs)
        .check_preservation(compiled.clobber_masks.clone());
    let r = ipra_sim::run(&compiled.mmodule, &config.target.regs, &sim_opts)?;
    Ok(Measurement {
        config: format!("{}+profile", config.name),
        stats: r.stats,
        output: r.output,
        trace: None,
    })
}

/// Simulates an already compiled module.
///
/// # Errors
///
/// Returns the simulator trap.
pub fn run_compiled(compiled: &CompiledModule, config: &Config) -> Result<Measurement, SimTrap> {
    let sim_opts = SimOptions::for_target(&config.target.regs)
        .check_preservation(compiled.clobber_masks.clone());
    let r = ipra_sim::run(&compiled.mmodule, &config.target.regs, &sim_opts)?;
    Ok(Measurement {
        config: config.name.clone(),
        stats: r.stats,
        output: r.output,
        trace: None,
    })
}

/// Like [`compile_and_run`], but with tracing enabled for the compilation:
/// the returned [`Measurement`] carries a [`CompileTrace`] with per-function
/// phase timings, iteration counters, allocation decisions and simulator
/// attribution. The stats and output are identical to the untraced path.
///
/// # Errors
///
/// Returns the simulator trap, like [`compile_and_run`].
pub fn compile_and_run_traced(module: &Module, config: &Config) -> Result<Measurement, SimTrap> {
    ipra_obs::enable();
    let compiled = compile_module(module, &config.target, &config.opts);
    let raw = ipra_obs::disable();
    let mut m = run_compiled(&compiled, config)?;
    m.trace = Some(CompileTrace::build(
        &config.name,
        &raw,
        &compiled,
        Some(&m.stats),
    ));
    Ok(m)
}

/// One row of the paper's Table 1 / Table 2 for a single workload: the
/// baseline plus percentage reductions per configuration.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Workload name.
    pub workload: String,
    /// Baseline cycles per call.
    pub cycles_per_call: f64,
    /// `(config, %cycles reduction, %scalar-memory reduction)` per column.
    pub columns: Vec<(String, f64, f64)>,
}

/// Measures a workload under a baseline and several configurations,
/// verifying that all outputs agree, and returns the paper-style row.
///
/// # Panics
///
/// Panics if any configuration traps or produces different output — both
/// indicate a compiler bug, not a measurement.
pub fn table_row(name: &str, module: &Module, base: &Config, configs: &[Config]) -> TableRow {
    let base_m = compile_and_run(module, base)
        .unwrap_or_else(|t| panic!("[{name}/{}] trapped: {t}", base.name));
    let mut columns = Vec::new();
    for c in configs {
        let m = compile_and_run(module, c)
            .unwrap_or_else(|t| panic!("[{name}/{}] trapped: {t}", c.name));
        assert_eq!(
            m.output, base_m.output,
            "[{name}/{}] output differs from baseline",
            c.name
        );
        columns.push((
            c.name.clone(),
            percent_reduction(base_m.cycles(), m.cycles()),
            percent_reduction(base_m.scalar_mem(), m.scalar_mem()),
        ));
    }
    TableRow {
        workload: name.to_string(),
        cycles_per_call: base_m.stats.cycles_per_call(),
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_module() -> Module {
        ipra_frontend::compile(
            r#"
            fn helper(a: int, b: int) -> int {
                var t: int = a * b;
                if t > 100 { t = t - 100; }
                return t + 1;
            }
            fn main() {
                var acc: int = 0;
                var i: int = 0;
                while i < 20 {
                    acc = acc + helper(i, acc);
                    i = i + 1;
                }
                print(acc);
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn all_named_configs_agree_on_output() {
        let m = demo_module();
        let base = compile_and_run(&m, &Config::o2_base()).unwrap();
        for c in [
            Config::no_alloc(),
            Config::a(),
            Config::b(),
            Config::c(),
            Config::d(),
            Config::e(),
        ] {
            let r = compile_and_run(&m, &c).unwrap();
            assert_eq!(r.output, base.output, "config {}", c.name);
        }
    }

    #[test]
    fn table_row_reports_reductions() {
        let m = demo_module();
        let row = table_row("demo", &m, &Config::o2_base(), &[Config::a(), Config::c()]);
        assert_eq!(row.columns.len(), 2);
        assert!(row.cycles_per_call > 0.0);
        let (_, _dc, dm) = &row.columns[1];
        assert!(
            *dm >= 0.0,
            "O3 must not add scalar traffic on this program, got {dm}"
        );
    }

    #[test]
    fn profile_guided_is_correct_and_never_worse_here() {
        let m = demo_module();
        let plain = compile_and_run(&m, &Config::c()).unwrap();
        let pg = profile_guided(&m, &Config::c()).unwrap();
        assert_eq!(pg.output, plain.output);
        assert!(
            pg.cycles() <= plain.cycles() + plain.cycles() / 10,
            "profile feedback should not noticeably regress: {} vs {}",
            pg.cycles(),
            plain.cycles()
        );
    }

    #[test]
    fn optimization_ladder_is_monotone_here() {
        // noalloc >> O2 >= O3 in scalar traffic on a call-intensive demo.
        let m = demo_module();
        let none = compile_and_run(&m, &Config::no_alloc()).unwrap();
        let o2 = compile_and_run(&m, &Config::o2_base()).unwrap();
        let o3 = compile_and_run(&m, &Config::c()).unwrap();
        assert!(o2.scalar_mem() < none.scalar_mem());
        assert!(o3.scalar_mem() <= o2.scalar_mem());
    }
}
