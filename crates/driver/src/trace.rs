//! Aggregation of raw observability records into a per-compilation report.
//!
//! [`CompileTrace`] groups the spans, counters and decision events emitted
//! by the pipeline (see `ipra-obs`) by function, pairs them with the
//! simulator's per-function attribution, and renders either a
//! human-readable report or a JSON document (hand-rolled — the workspace
//! carries no serde).

use ipra_core::cache::CacheStats;
use ipra_core::ipra::CompiledModule;
use ipra_core::AnalysisStats;
use ipra_obs::json::Json;
use ipra_obs::metrics::{Log2Histogram, Metrics};
use ipra_obs::Trace;
use ipra_sim::stats::ROOT_CALLER;
use ipra_sim::Stats;

/// Wall-clock time of one pipeline phase of one function. Phases nest:
/// sub-phase spans (e.g. `shrink_wrap.round` and its `shrink_wrap.antav`
/// sweeps) appear under their enclosing phase via the span parent ids, so
/// per-function `phases` lists only top-level pipeline phases.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTime {
    /// Phase name: `ranges`, `priority`, `color`, `shrink_wrap` or `lower`
    /// at the top level; sub-phase names below.
    pub name: String,
    /// Start in nanoseconds relative to trace start.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Sub-phase spans nested under this phase, in completion order.
    pub children: Vec<PhaseTime>,
}

/// One per-vreg allocation decision (from the coloring pass).
#[derive(Clone, Debug, PartialEq)]
pub struct AllocDecision {
    /// Virtual-register index.
    pub vreg: u32,
    /// `caller_saved`, `callee_saved`, `split` or `mem`.
    pub kind: String,
    /// The register taken, for whole-range register assignments.
    pub reg: Option<String>,
    /// The priority density that decided it (`-inf` when the range never
    /// had a viable register to price; rendered as JSON `null`).
    pub priority: f64,
}

/// Simulator attribution for one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncSimTrace {
    /// Cycles charged while the function was executing.
    pub cycles: u64,
    /// Instructions it executed.
    pub insts: u64,
    /// Call instructions it executed.
    pub calls: u64,
    /// Loads it executed (all classes).
    pub loads: u64,
    /// Stores it executed (all classes).
    pub stores: u64,
    /// Its save/restore loads + stores — the paper's register-usage
    /// penalty, attributed to the function that pays it.
    pub save_restore_mem: u64,
}

/// Everything recorded about one function.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncTrace {
    /// Function name.
    pub name: String,
    /// Pipeline phase timings, in completion order.
    pub phases: Vec<PhaseTime>,
    /// Counters summed per name, sorted by name (e.g.
    /// `dataflow.liveness.iterations`, `shrink_wrap.iterations`).
    pub counters: Vec<(String, u64)>,
    /// Per-vreg allocation decisions, in decision order.
    pub decisions: Vec<AllocDecision>,
    /// Simulator attribution (present when the program ran).
    pub sim: Option<FuncSimTrace>,
}

/// One dynamic call edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallEdge {
    /// Calling function.
    pub caller: String,
    /// Called function.
    pub callee: String,
    /// Times the edge was taken.
    pub count: u64,
}

/// Register-usage penalty attributed to one caller→callee edge — the
/// per-edge ledger combining the simulator's dynamic accounting (every
/// save/restore and spill memory operation charged to the edge that
/// created the executing activation) with the allocator's static plan
/// (caller-side saves around call sites on this edge).
///
/// Field-wise sums of the dynamic columns over all edges reconcile
/// *exactly* with the aggregate [`SimTrace`] save/restore and spill
/// totals; the synthetic `<entry>` caller carries `main`'s own prologue
/// traffic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PenaltyEdge {
    /// Calling function, or `"<entry>"` for the program-entry edge.
    pub caller: String,
    /// Called function.
    pub callee: String,
    /// Times the edge was taken (0 for the entry edge and for edges the
    /// run never executed).
    pub calls: u64,
    /// Save/restore loads executed by activations this edge created.
    pub sr_loads: u64,
    /// Save/restore stores executed by activations this edge created.
    pub sr_stores: u64,
    /// Spill loads executed by activations this edge created.
    pub spill_loads: u64,
    /// Spill stores executed by activations this edge created.
    pub spill_stores: u64,
    /// Cycles spent on the save/restore traffic above (the edge's share of
    /// the paper's Eq 3.5/3.6 penalty under the run's cost model).
    pub penalty_cycles: u64,
    /// Registers the allocator planned to save around this edge's call
    /// sites (static; 0 when the caller replayed from the incremental
    /// cache and recorded no allocation metrics).
    pub static_save_regs: u64,
}

/// Whole-program simulator summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimTrace {
    /// Total cycles.
    pub cycles: u64,
    /// Total instructions.
    pub insts: u64,
    /// Total calls.
    pub calls: u64,
    /// Deepest call stack observed.
    pub max_depth: usize,
    /// Save/restore loads (aggregate).
    pub save_restore_loads: u64,
    /// Save/restore stores (aggregate).
    pub save_restore_stores: u64,
    /// Spill loads (aggregate).
    pub spill_loads: u64,
    /// Spill stores (aggregate).
    pub spill_stores: u64,
    /// Total cycles spent on save/restore traffic — the aggregate penalty
    /// the per-edge ledger decomposes.
    pub penalty_cycles: u64,
    /// Activations entered, bucketed by stack depth (log₂ buckets; exact
    /// count and max).
    pub depth_hist: Log2Histogram,
    /// Dynamic call-edge counts, sorted by caller then callee id.
    pub call_edges: Vec<CallEdge>,
}

/// A compilation (and optionally execution) trace, aggregated per function.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileTrace {
    /// Configuration label the module was compiled under.
    pub config: String,
    /// Module-level counters (call-graph shape, promotion), summed per
    /// name and sorted by name.
    pub module_counters: Vec<(String, u64)>,
    /// Per-function traces, in function-id order.
    pub funcs: Vec<FuncTrace>,
    /// Simulator summary, when the program was run.
    pub sim: Option<SimTrace>,
    /// Incremental-cache outcome, when a cache directory was configured.
    pub cache: Option<CacheStats>,
    /// Analysis-memo outcome of this compile: how many per-function
    /// analysis bundles were replayed by body hash vs computed fresh.
    pub analysis: AnalysisStats,
    /// Per-call-edge penalty ledger: executed edges first (in function-id
    /// order, the `<entry>` edge last), then statically-planned edges the
    /// run never took, in name order.
    pub penalty_by_edge: Vec<PenaltyEdge>,
    /// Labeled metrics recorded during the compile (registry snapshot;
    /// serialized sorted by `(name, labels)`).
    pub metrics: Metrics,
}

/// Nests one function's spans into phase trees via the span parent ids.
/// A span whose parent is missing from the function's own span set (or
/// `None`) is top-level; children keep completion order. Raw span ids are
/// scheduling-dependent (workers get remapped id blocks), so they are
/// resolved here and never surface in the output — the rendered trace is
/// identical for serial and parallel compilations.
fn phase_tree(raw: &Trace, func: &str) -> Vec<PhaseTime> {
    let spans: Vec<&ipra_obs::SpanRec> = raw.spans.iter().filter(|s| s.scope == func).collect();
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    // Determinism: `by_parent` is only ever read by keyed lookup (`get`);
    // output order comes from the `spans`/`top` Vecs, never from map
    // iteration, so the HashMap's randomized order cannot leak out.
    let mut by_parent: std::collections::HashMap<u64, Vec<&ipra_obs::SpanRec>> =
        std::collections::HashMap::new();
    let mut top: Vec<&ipra_obs::SpanRec> = Vec::new();
    for s in &spans {
        match s.parent_id {
            Some(p) if ids.contains(&p) => by_parent.entry(p).or_default().push(s),
            _ => top.push(s),
        }
    }
    fn build(
        s: &ipra_obs::SpanRec,
        by_parent: &std::collections::HashMap<u64, Vec<&ipra_obs::SpanRec>>,
    ) -> PhaseTime {
        PhaseTime {
            name: s.name.to_string(),
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
            children: by_parent
                .get(&s.id)
                .map(|cs| cs.iter().map(|c| build(c, by_parent)).collect())
                .unwrap_or_default(),
        }
    }
    top.into_iter().map(|s| build(s, &by_parent)).collect()
}

fn sum_counters(items: impl Iterator<Item = (String, u64)>) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    for (name, v) in items {
        match out.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += v,
            None => out.push((name, v)),
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

impl CompileTrace {
    /// Builds the aggregated trace from the raw records of one compilation,
    /// the compiled module (for the function list) and, optionally, the
    /// simulator statistics of a run.
    pub fn build(
        config: &str,
        raw: &Trace,
        compiled: &CompiledModule,
        stats: Option<&Stats>,
    ) -> CompileTrace {
        let module_counters = sum_counters(
            raw.counters
                .iter()
                .filter(|c| c.scope.is_empty())
                .map(|c| (c.name.to_string(), c.value)),
        );

        let funcs = compiled
            .reports
            .iter()
            .enumerate()
            .map(|(fi, report)| {
                let name = report.name.clone();
                let phases = phase_tree(raw, &name);
                let counters = sum_counters(
                    raw.counters
                        .iter()
                        .filter(|c| c.scope == name)
                        .map(|c| (c.name.to_string(), c.value)),
                );
                let decisions = raw
                    .events
                    .iter()
                    .filter(|e| e.scope == name && e.name == "alloc.decision")
                    .map(|e| {
                        let field = |k: &str| e.fields.iter().find(|(n, _)| *n == k);
                        AllocDecision {
                            vreg: field("vreg").and_then(|(_, v)| v.as_i64()).unwrap_or(-1) as u32,
                            kind: field("kind")
                                .and_then(|(_, v)| v.as_str())
                                .unwrap_or("?")
                                .to_string(),
                            reg: field("reg")
                                .and_then(|(_, v)| v.as_str())
                                .map(str::to_string),
                            priority: field("priority")
                                .map(|(_, v)| match v {
                                    ipra_obs::TraceValue::Float(f) => *f,
                                    ipra_obs::TraceValue::Int(i) => *i as f64,
                                    _ => f64::NEG_INFINITY,
                                })
                                .unwrap_or(f64::NEG_INFINITY),
                        }
                    })
                    .collect();
                let sim = stats
                    .and_then(|s| s.per_func.get(fi))
                    .map(|f| FuncSimTrace {
                        cycles: f.cycles,
                        insts: f.insts,
                        calls: f.calls,
                        loads: f.loads_by_class.iter().sum(),
                        stores: f.stores_by_class.iter().sum(),
                        save_restore_mem: f.save_restore_mem(),
                    });
                FuncTrace {
                    name,
                    phases,
                    counters,
                    decisions,
                    sim,
                }
            })
            .collect();

        let fname = |i: u32| {
            if i == ROOT_CALLER {
                return "<entry>".to_string();
            }
            compiled
                .reports
                .get(i as usize)
                .map_or_else(|| format!("#{i}"), |r| r.name.clone())
        };

        let sim = stats.map(|s| SimTrace {
            cycles: s.cycles,
            insts: s.insts,
            calls: s.calls,
            max_depth: s.max_depth(),
            save_restore_loads: s.loads(ipra_machine::MemClass::SaveRestore),
            save_restore_stores: s.stores(ipra_machine::MemClass::SaveRestore),
            spill_loads: s.loads(ipra_machine::MemClass::Spill),
            spill_stores: s.stores(ipra_machine::MemClass::Spill),
            penalty_cycles: s.edge_penalty.iter().map(|e| e.penalty_cycles).sum(),
            depth_hist: s.depth_hist.clone(),
            call_edges: s
                .call_edges
                .iter()
                .map(|&(a, b, n)| CallEdge {
                    caller: fname(a),
                    callee: fname(b),
                    count: n,
                })
                .collect(),
        });

        // Penalty ledger: dynamic edges from the simulator, static
        // caller-side save plans from the allocator's labeled metrics,
        // joined by (caller, callee) name.
        let mut penalty_by_edge: Vec<PenaltyEdge> = stats
            .map(|s| {
                s.edge_penalty
                    .iter()
                    .map(|e| PenaltyEdge {
                        caller: fname(e.caller),
                        callee: fname(e.callee),
                        calls: e.calls,
                        sr_loads: e.sr_loads,
                        sr_stores: e.sr_stores,
                        spill_loads: e.spill_loads,
                        spill_stores: e.spill_stores,
                        penalty_cycles: e.penalty_cycles,
                        static_save_regs: 0,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let mut static_edges: Vec<(String, String, u64)> = raw
            .metrics
            .counters_named("penalty.callsite.saved_regs")
            .map(|m| {
                let label = |k: &str| {
                    m.labels
                        .iter()
                        .find(|(n, _)| n == k)
                        .map_or("?", |(_, v)| v.as_str())
                };
                (
                    label("caller").to_string(),
                    label("callee").to_string(),
                    m.value,
                )
            })
            .collect();
        static_edges.sort();
        for (caller, callee, regs) in static_edges {
            match penalty_by_edge
                .iter_mut()
                .find(|e| e.caller == caller && e.callee == callee)
            {
                Some(e) => e.static_save_regs += regs,
                None => penalty_by_edge.push(PenaltyEdge {
                    caller,
                    callee,
                    calls: 0,
                    sr_loads: 0,
                    sr_stores: 0,
                    spill_loads: 0,
                    spill_stores: 0,
                    penalty_cycles: 0,
                    static_save_regs: regs,
                }),
            }
        }

        CompileTrace {
            config: config.to_string(),
            module_counters,
            funcs,
            sim,
            cache: compiled.cache.enabled.then(|| compiled.cache.clone()),
            analysis: compiled.analysis,
            penalty_by_edge,
            metrics: raw.metrics.clone(),
        }
    }

    /// Renders the human-readable report (`mini-cc --trace`).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== compile trace [{}] ==", self.config);
        for (name, v) in &self.module_counters {
            let _ = writeln!(out, "  {name}: {v}");
        }
        if let Some(c) = &self.cache {
            let _ = writeln!(
                out,
                "  cache: {} hits, {} misses, {} cutoffs",
                c.hits, c.misses, c.cutoffs
            );
        }
        let _ = writeln!(
            out,
            "  analysis memo: {} hits, {} misses",
            self.analysis.hits, self.analysis.misses
        );
        fn write_phase(out: &mut String, p: &PhaseTime, depth: usize) {
            use std::fmt::Write as _;
            let indent = "  ".repeat(depth + 1);
            let _ = writeln!(out, "{indent}phase {:<12} {:>9} ns", p.name, p.dur_ns);
            for c in &p.children {
                write_phase(out, c, depth + 1);
            }
        }
        for f in &self.funcs {
            let _ = writeln!(out, "fn {}:", f.name);
            for p in &f.phases {
                write_phase(&mut out, p, 0);
            }
            for (name, v) in &f.counters {
                let _ = writeln!(out, "  {name}: {v}");
            }
            let regs = f.decisions.iter().filter(|d| d.reg.is_some()).count();
            let split = f.decisions.iter().filter(|d| d.kind == "split").count();
            let mem = f.decisions.iter().filter(|d| d.kind == "mem").count();
            let _ = writeln!(
                out,
                "  decisions: {} vregs -> {regs} reg, {split} split, {mem} mem",
                f.decisions.len()
            );
            if let Some(s) = &f.sim {
                let _ = writeln!(
                    out,
                    "  sim: {} cycles, {} insts, {} calls, {} save/restore mem ops",
                    s.cycles, s.insts, s.calls, s.save_restore_mem
                );
            }
        }
        if let Some(s) = &self.sim {
            let _ = writeln!(
                out,
                "sim total: {} cycles, {} insts, {} calls, max depth {}",
                s.cycles, s.insts, s.calls, s.max_depth
            );
            let _ = writeln!(
                out,
                "  penalty: {} cycles ({} sr loads, {} sr stores, {} spill ops)",
                s.penalty_cycles,
                s.save_restore_loads,
                s.save_restore_stores,
                s.spill_loads + s.spill_stores
            );
            let _ = writeln!(out, "  depth histogram: {}", s.depth_hist);
            for e in &s.call_edges {
                let _ = writeln!(out, "  call {} -> {}: {}", e.caller, e.callee, e.count);
            }
        }
        if !self.penalty_by_edge.is_empty() {
            let _ = writeln!(out, "penalty by edge:");
            for e in &self.penalty_by_edge {
                let _ = writeln!(
                    out,
                    "  {} -> {}: {} cycles ({} sr ops, {} spill ops, {} calls, {} planned save regs)",
                    e.caller,
                    e.callee,
                    e.penalty_cycles,
                    e.sr_loads + e.sr_stores,
                    e.spill_loads + e.spill_stores,
                    e.calls,
                    e.static_save_regs
                );
            }
        }
        out
    }

    /// Serializes to the JSON schema documented in `DESIGN.md`
    /// ("Observability").
    pub fn to_json(&self) -> Json {
        let counters_obj = |cs: &[(String, u64)]| {
            Json::Obj(
                cs.iter()
                    .map(|(n, v)| (n.clone(), Json::Int(*v as i64)))
                    .collect(),
            )
        };
        let funcs = self
            .funcs
            .iter()
            .map(|f| {
                fn phase_json(p: &PhaseTime) -> Json {
                    Json::obj(vec![
                        ("name", Json::Str(p.name.clone())),
                        ("start_ns", Json::Int(p.start_ns as i64)),
                        ("dur_ns", Json::Int(p.dur_ns as i64)),
                        (
                            "children",
                            Json::Arr(p.children.iter().map(phase_json).collect()),
                        ),
                    ])
                }
                let phases = f.phases.iter().map(phase_json).collect();
                let decisions = f
                    .decisions
                    .iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("vreg", Json::Int(d.vreg as i64)),
                            ("kind", Json::Str(d.kind.clone())),
                            ("reg", d.reg.clone().map_or(Json::Null, Json::Str)),
                            ("priority", Json::Float(d.priority)),
                        ])
                    })
                    .collect();
                let mut fields = vec![
                    ("name", Json::Str(f.name.clone())),
                    ("phases", Json::Arr(phases)),
                    ("counters", counters_obj(&f.counters)),
                    ("decisions", Json::Arr(decisions)),
                ];
                if let Some(s) = &f.sim {
                    fields.push((
                        "sim",
                        Json::obj(vec![
                            ("cycles", Json::Int(s.cycles as i64)),
                            ("insts", Json::Int(s.insts as i64)),
                            ("calls", Json::Int(s.calls as i64)),
                            ("loads", Json::Int(s.loads as i64)),
                            ("stores", Json::Int(s.stores as i64)),
                            ("save_restore_mem", Json::Int(s.save_restore_mem as i64)),
                        ]),
                    ));
                }
                Json::obj(fields)
            })
            .collect();

        let mut root = vec![
            ("config", Json::Str(self.config.clone())),
            (
                "module",
                Json::obj(vec![("counters", counters_obj(&self.module_counters))]),
            ),
            ("functions", Json::Arr(funcs)),
        ];
        if let Some(c) = &self.cache {
            root.push((
                "cache",
                Json::obj(vec![
                    ("hits", Json::Int(c.hits as i64)),
                    ("misses", Json::Int(c.misses as i64)),
                    ("cutoffs", Json::Int(c.cutoffs as i64)),
                    (
                        "recompiled",
                        Json::Arr(c.recompiled.iter().map(|n| Json::Str(n.clone())).collect()),
                    ),
                ]),
            ));
        }
        root.push((
            "analysis",
            Json::obj(vec![
                ("hits", Json::Int(self.analysis.hits as i64)),
                ("misses", Json::Int(self.analysis.misses as i64)),
            ]),
        ));
        if let Some(s) = &self.sim {
            root.push((
                "sim",
                Json::obj(vec![
                    ("cycles", Json::Int(s.cycles as i64)),
                    ("insts", Json::Int(s.insts as i64)),
                    ("calls", Json::Int(s.calls as i64)),
                    ("max_depth", Json::Int(s.max_depth as i64)),
                    ("save_restore_loads", Json::Int(s.save_restore_loads as i64)),
                    (
                        "save_restore_stores",
                        Json::Int(s.save_restore_stores as i64),
                    ),
                    ("spill_loads", Json::Int(s.spill_loads as i64)),
                    ("spill_stores", Json::Int(s.spill_stores as i64)),
                    ("penalty_cycles", Json::Int(s.penalty_cycles as i64)),
                    ("depth_hist", s.depth_hist.to_json()),
                    (
                        "call_edges",
                        Json::Arr(
                            s.call_edges
                                .iter()
                                .map(|e| {
                                    Json::obj(vec![
                                        ("caller", Json::Str(e.caller.clone())),
                                        ("callee", Json::Str(e.callee.clone())),
                                        ("count", Json::Int(e.count as i64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        root.push((
            "penalty_by_edge",
            Json::Arr(
                self.penalty_by_edge
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("caller", Json::Str(e.caller.clone())),
                            ("callee", Json::Str(e.callee.clone())),
                            ("calls", Json::Int(e.calls as i64)),
                            ("sr_loads", Json::Int(e.sr_loads as i64)),
                            ("sr_stores", Json::Int(e.sr_stores as i64)),
                            ("spill_loads", Json::Int(e.spill_loads as i64)),
                            ("spill_stores", Json::Int(e.spill_stores as i64)),
                            ("penalty_cycles", Json::Int(e.penalty_cycles as i64)),
                            ("static_save_regs", Json::Int(e.static_save_regs as i64)),
                        ])
                    })
                    .collect(),
            ),
        ));
        root.push(("metrics", self.metrics.to_json()));
        Json::Obj(root.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_summed_and_sorted() {
        let items = vec![
            ("b".to_string(), 2u64),
            ("a".to_string(), 1),
            ("b".to_string(), 3),
        ];
        assert_eq!(
            sum_counters(items.into_iter()),
            vec![("a".to_string(), 1), ("b".to_string(), 5)]
        );
    }
}
