//! Differential-testing oracle over the full configuration cross-product.
//!
//! One seed passes when, for *every* named allocator configuration, the
//! simulated machine code (with the register-preservation checker on)
//! prints exactly what the [`ipra_ir::interp`] reference interpreter
//! prints — and additionally the compile is deterministic across worker
//! counts (`jobs = 1` vs `jobs = 4` render byte-identical assembly),
//! across cache temperature (a warm `--cache-dir` compile replays to the
//! same assembly as the cold one that populated it), and across scratch
//! reuse (a second compile through one persistent pipeline — memoized
//! analyses, recycled buffers — matches a fresh compile). A final trace oracle
//! re-compiles under tracing and demands that the `--trace-json` document
//! re-parses, that its span tree is well formed, and that the per-edge
//! penalty ledger reconciles exactly with the aggregate statistics.
//!
//! Seeds whose oracle run exhausts a resource budget (fuel or call depth)
//! are *skipped*, not failed: a generated program too expensive to execute
//! tells us nothing about the compiler.
//!
//! Source-level seeds additionally pass through the daemon-vs-oneshot
//! oracle: the seed is compiled by a live in-process `mini-ccd` service
//! session (cold, then warm on the hot pipeline) and both responses must
//! carry assembly byte-identical to a fresh one-shot compile.

use std::fmt;
use std::path::PathBuf;

use ipra_core::config::AllocOptions;
use ipra_core::ipra::CompiledModule;
use ipra_ir::interp::{self, InterpOptions, Trap};
use ipra_ir::Module;
use ipra_machine::Target;

use crate::{compile_only, run_compiled, Config};

/// Every named configuration the differential harness checks, in table
/// order: the `-O2` baseline, Table 1 columns A–C, the register-starved
/// Table 2 columns D and E, the no-allocation oracle config, the
/// `-O3` pipeline retargeted at the irregular register files — the
/// `embedded8` named target and the `convsearch`-winning partition — so
/// every seed also exercises conventions far from the mips-like shape
/// (skewed caller/callee split, few allocatable registers, reduced
/// argument-register count), and the two inliner ablation legs
/// (`inline/A`, `inline/C`), whose module transform must preserve the
/// interpreter oracle, the static register contracts and byte-identity
/// across jobs just like any allocation config.
pub fn all_configs() -> Vec<Config> {
    let mut v = vec![
        Config::o2_base(),
        Config::a(),
        Config::b(),
        Config::c(),
        Config::d(),
        Config::e(),
        Config::no_alloc(),
    ];
    for name in ["embedded8", "searched"] {
        v.push(Config {
            name: name.into(),
            target: Target::by_name(name).expect("registry target"),
            opts: AllocOptions::o3(),
        });
    }
    v.push(Config::inline_a());
    v.push(Config::inline_c());
    v
}

/// Knobs for one differential check.
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Budgets for the reference-interpreter oracle run. Seeds that
    /// exhaust them are reported as [`DiffVerdict::Skipped`].
    pub interp: InterpOptions,
    /// Worker counts whose compiles must render byte-identical assembly.
    pub jobs_pair: (usize, usize),
    /// When set, a scratch directory for the cold-vs-warm cache check
    /// (run under configuration C). The harness creates and removes a
    /// subdirectory per call, so one root may serve many seeds.
    pub cache_root: Option<PathBuf>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            interp: InterpOptions::default(),
            jobs_pair: (1, 4),
            cache_root: None,
        }
    }
}

impl DiffOptions {
    /// Returns options with the oracle instruction budget replaced.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.interp = self.interp.with_fuel(fuel);
        self
    }

    /// Returns options with the cache scratch root set.
    pub fn with_cache_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.cache_root = Some(root.into());
        self
    }
}

/// A non-failing check result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DiffVerdict {
    /// Every configuration agreed with the oracle.
    Pass,
    /// The oracle run exhausted a resource budget; nothing was checked.
    Skipped(Trap),
}

/// One differential disagreement — a compiler bug until proven otherwise.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiffFailure {
    /// Name of the configuration (or pipeline stage) that disagreed.
    pub config: String,
    /// Human-readable description of the disagreement.
    pub what: String,
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.config, self.what)
    }
}

impl std::error::Error for DiffFailure {}

fn fail(config: &str, what: impl Into<String>) -> DiffFailure {
    DiffFailure {
        config: config.to_string(),
        what: what.into(),
    }
}

/// Renders every function's machine code — the byte-identity witness for
/// the determinism and cache checks.
fn asm_of(compiled: &CompiledModule, config: &Config) -> String {
    let mut out = String::new();
    for (_, f) in compiled.mmodule.funcs.iter() {
        out.push_str(
            &f.display_in(&config.target.regs, &compiled.mmodule)
                .to_string(),
        );
        out.push('\n');
    }
    out
}

/// Describes the first index where two outputs diverge, compactly.
fn diff_outputs(got: &[i64], want: &[i64]) -> String {
    let i = got
        .iter()
        .zip(want.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| got.len().min(want.len()));
    format!(
        "output diverges at print #{i}: got {:?} (len {}), oracle {:?} (len {})",
        got.get(i),
        got.len(),
        want.get(i),
        want.len()
    )
}

/// Runs the full differential check on one module.
///
/// # Errors
///
/// Returns the first [`DiffFailure`] found: a simulator trap (including
/// register-preservation violations), an output mismatch against the
/// interpreter, a `jobs`-dependent compile, or a warm-cache compile that
/// differs from the cold one.
pub fn check_module(module: &Module, opts: &DiffOptions) -> Result<DiffVerdict, DiffFailure> {
    // IR well-formedness first: breakage introduced before allocation is
    // attributed to the frontend/IR stage, not to whichever configuration
    // happens to trip over it downstream.
    if let Err(errs) = ipra_ir::verify::verify_module(module) {
        return Err(fail(
            "ir-verify",
            format!("IR verifier rejected the module: {}", errs[0]),
        ));
    }

    let oracle = match interp::run_module_with(module, opts.interp) {
        Ok(r) => r,
        Err(t) if t.is_resource_limit() => return Ok(DiffVerdict::Skipped(t)),
        Err(t) => return Err(fail("interp", format!("oracle trapped: {t}"))),
    };

    for config in all_configs() {
        let mut c1 = config.clone();
        c1.opts.jobs = opts.jobs_pair.0;
        let compiled = compile_only(module, &c1);
        // Static oracle: prove the register contracts on every path before
        // the dynamic run exercises one of them.
        if let Some(v) =
            ipra_verify::verify_module(&compiled.mmodule, &c1.target.regs, &compiled.summaries)
                .first()
        {
            return Err(fail(
                &format!("static-verify/{}", config.name),
                format!("static verifier rejected the module: {v}"),
            ));
        }
        let m = run_compiled(&compiled, &c1)
            .map_err(|t| fail(&config.name, format!("simulator trapped: {t}")))?;
        if m.output != oracle.output {
            return Err(fail(&config.name, diff_outputs(&m.output, &oracle.output)));
        }

        let mut c4 = config.clone();
        c4.opts.jobs = opts.jobs_pair.1;
        let compiled4 = compile_only(module, &c4);
        if asm_of(&compiled4, &c4) != asm_of(&compiled, &c1) {
            return Err(fail(
                &config.name,
                format!(
                    "assembly differs between jobs={} and jobs={}",
                    opts.jobs_pair.0, opts.jobs_pair.1
                ),
            ));
        }
    }

    if let Some(root) = &opts.cache_root {
        check_cache_roundtrip(module, root)?;
    }
    check_scratch_reuse(module)?;
    check_trace(module)?;
    Ok(DiffVerdict::Pass)
}

/// Scratch-reuse parity: compiling the same module twice through one
/// persistent [`ipra_core::Pipeline`] — the second pass replays memoized
/// analyses and runs inside recycled scratch buffers — must render
/// assembly byte-identical to a fresh one-shot compile, and the second
/// pass must answer every analysis lookup from the memo.
fn check_scratch_reuse(module: &Module) -> Result<(), DiffFailure> {
    let config = Config::c();
    let fresh = compile_only(module, &config);
    let want = asm_of(&fresh, &config);

    let pipe = ipra_core::Pipeline::new();
    let first = pipe.compile(module, &config.target, &config.opts);
    if asm_of(&first, &config) != want {
        return Err(fail(
            "scratch",
            "pipeline compile differs from one-shot compile",
        ));
    }
    let second = pipe.compile(module, &config.target, &config.opts);
    if asm_of(&second, &config) != want {
        return Err(fail(
            "scratch",
            "reused-scratch recompile differs from fresh compile",
        ));
    }
    let n = module.funcs.len() as u64;
    if second.analysis.hits != n || second.analysis.misses != 0 {
        return Err(fail(
            "scratch",
            format!(
                "warm recompile expected {n} analysis-memo hits / 0 misses, got {} / {}",
                second.analysis.hits, second.analysis.misses
            ),
        ));
    }
    Ok(())
}

/// Trace oracle: a traced compile+run of configuration C must produce a
/// `--trace-json` document that (a) round-trips through our own JSON
/// parser, (b) carries a well-formed span tree — unique ids, every parent
/// recorded before its children — and (c) has a per-edge penalty ledger
/// that reconciles *exactly* with the aggregate simulator statistics.
fn check_trace(module: &Module) -> Result<(), DiffFailure> {
    let config = Config::c();
    ipra_obs::enable();
    let compiled = compile_only(module, &config);
    let raw = ipra_obs::disable();

    // Span-tree well-formedness on the raw trace.
    let mut seen = std::collections::HashSet::new();
    for sp in &raw.spans {
        if !seen.insert(sp.id) {
            return Err(fail("trace", format!("duplicate span id {}", sp.id)));
        }
        if let Some(parent) = sp.parent_id {
            if parent >= sp.id {
                return Err(fail(
                    "trace",
                    format!("span {} has non-preceding parent {parent}", sp.id),
                ));
            }
        }
    }

    let m = run_compiled(&compiled, &config)
        .map_err(|t| fail("trace", format!("simulator trapped: {t}")))?;
    let trace = crate::CompileTrace::build(&config.name, &raw, &compiled, Some(&m.stats));

    // JSON round trip through our own parser.
    let rendered = trace.to_json().render_pretty();
    let doc = ipra_obs::json::parse(&rendered)
        .map_err(|e| fail("trace", format!("trace JSON does not re-parse: {e}")))?;
    if doc
        .get("penalty_by_edge")
        .and_then(|j| j.as_arr())
        .is_none()
    {
        return Err(fail("trace", "re-parsed trace lost `penalty_by_edge`"));
    }

    // Exact ledger-vs-aggregate reconciliation.
    let stats = &m.stats;
    let cls = ipra_machine::MemClass::SaveRestore;
    let spill = ipra_machine::MemClass::Spill;
    let cost = &ipra_sim::SimOptions::for_target(&config.target.regs).cost;
    let sums = trace.penalty_by_edge.iter().fold([0u64; 5], |mut a, e| {
        a[0] += e.sr_loads;
        a[1] += e.sr_stores;
        a[2] += e.spill_loads;
        a[3] += e.spill_stores;
        a[4] += e.penalty_cycles;
        a
    });
    let want = [
        stats.loads(cls),
        stats.stores(cls),
        stats.loads(spill),
        stats.stores(spill),
        stats.penalty_cycles(cost),
    ];
    if sums != want {
        return Err(fail(
            "trace",
            format!(
                "penalty ledger does not reconcile with aggregate stats: \
                 edge sums {sums:?} != aggregates {want:?} \
                 (sr loads/stores, spill loads/stores, penalty cycles)"
            ),
        ));
    }
    Ok(())
}

/// Cold compile populates a fresh cache directory; the warm compile must
/// replay every function and render byte-identical assembly. Checked
/// under configuration C and under the `inline/C` leg (whose transformed
/// bodies drive different cache keys through the same derivation).
fn check_cache_roundtrip(module: &Module, root: &std::path::Path) -> Result<(), DiffFailure> {
    for (label, base) in [("cache", Config::c()), ("inline/cache", Config::inline_c())] {
        let dir = root.join(format!("diff-{}-{label}", std::process::id()).replace('/', "-"));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cfg = base;
        cfg.opts.cache_dir = Some(dir.clone());
        let n = module.funcs.len() as u64;

        let cold = compile_only(module, &cfg);
        let warm = compile_only(module, &cfg);
        let result = if cold.cache.misses != n || cold.cache.hits != 0 {
            Err(fail(
                label,
                format!(
                    "cold compile expected {n} misses / 0 hits, got {} / {}",
                    cold.cache.misses, cold.cache.hits
                ),
            ))
        } else if warm.cache.hits != n || warm.cache.misses != 0 {
            Err(fail(
                label,
                format!(
                    "warm compile expected {n} hits / 0 misses, got {} / {}",
                    warm.cache.hits, warm.cache.misses
                ),
            ))
        } else if asm_of(&warm, &cfg) != asm_of(&cold, &cfg) {
            Err(fail(label, "warm assembly differs from cold"))
        } else {
            Ok(())
        };
        let _ = std::fs::remove_dir_all(&dir);
        result?;
    }
    Ok(())
}

/// Daemon-vs-oneshot oracle: the same source sent to a live in-process
/// compile service (a real session over a Unix socket pair, speaking the
/// framed wire protocol) must render assembly byte-identical to a fresh
/// one-shot compile — on the cold first request and on the warm repeat
/// answered from the hot pipeline.
fn check_service(source: &str, module: &Module) -> Result<(), DiffFailure> {
    use crate::service::{roundtrip, CompileRequest, RequestSource, Service};

    let config = Config::c();
    let want = asm_of(&compile_only(module, &config), &config);
    let service = Service::with_defaults();
    let (mut client, server) = std::os::unix::net::UnixStream::pair()
        .map_err(|e| fail("service", format!("socketpair failed: {e}")))?;
    std::thread::scope(|s| {
        let srv = s.spawn(move || service.serve_session(&server, &server));
        for (id, label) in [(1, "cold"), (2, "warm")] {
            let req = CompileRequest::new(id, RequestSource::Source(source.to_string()));
            let resp = roundtrip(&mut client, &req.to_json())
                .map_err(|e| fail("service", format!("{label} request failed: {e}")))?;
            if resp.get("status").and_then(|j| j.as_str()) != Some("ok") {
                return Err(fail(
                    "service",
                    format!("{label} compile not ok: {}", resp.render()),
                ));
            }
            if resp.get("asm").and_then(|j| j.as_str()) != Some(want.as_str()) {
                return Err(fail(
                    "service",
                    format!("{label} daemon assembly differs from one-shot compile"),
                ));
            }
            let warm_flag = resp.get("warm") == Some(&ipra_obs::json::Json::Bool(true));
            if warm_flag != (label == "warm") {
                return Err(fail(
                    "service",
                    format!("{label} request reported warm={warm_flag}"),
                ));
            }
        }
        drop(client);
        srv.join()
            .map_err(|_| fail("service", "session thread panicked"))?
            .map_err(|e| fail("service", format!("session torn down: {e}")))?;
        Ok(())
    })
}

/// Compiles Mini source and runs [`check_module`] on the result, then —
/// because only source-level seeds can exercise the wire protocol — the
/// daemon-vs-oneshot service oracle ([`check_service`]).
///
/// # Errors
///
/// A frontend rejection is a failure too — the generator promises valid
/// programs — reported under the pseudo-config `"frontend"`.
pub fn check_source(source: &str, opts: &DiffOptions) -> Result<DiffVerdict, DiffFailure> {
    let module = ipra_frontend::compile(source)
        .map_err(|e| fail("frontend", format!("generated source rejected: {e}")))?;
    let verdict = check_module(&module, opts)?;
    if verdict == DiffVerdict::Pass {
        check_service(source, &module)?;
    }
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK: &str = r#"
        fn add(a: int, b: int) -> int { return a + b; }
        fn main() { print(add(2, 3)); }
    "#;

    #[test]
    fn cross_product_includes_the_irregular_targets() {
        let names: Vec<String> = all_configs().into_iter().map(|c| c.name).collect();
        for want in ["embedded8", "searched"] {
            assert!(names.iter().any(|n| n == want), "{want} missing: {names:?}");
        }
    }

    #[test]
    fn healthy_program_passes_all_configs() {
        assert_eq!(
            check_source(OK, &DiffOptions::default()).unwrap(),
            DiffVerdict::Pass
        );
    }

    #[test]
    fn cache_roundtrip_check_passes_on_healthy_program() {
        let dir = std::env::temp_dir().join(format!("ipra-diff-test-{}", std::process::id()));
        let opts = DiffOptions::default().with_cache_root(&dir);
        assert_eq!(check_source(OK, &opts).unwrap(), DiffVerdict::Pass);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fuel_exhaustion_is_a_skip_not_a_failure() {
        // Terminates, but not within two instructions.
        let opts = DiffOptions::default().with_fuel(2);
        match check_source(OK, &opts).unwrap() {
            DiffVerdict::Skipped(t) => assert!(t.is_resource_limit()),
            v => panic!("expected a skip, got {v:?}"),
        }
    }

    #[test]
    fn service_oracle_accepts_a_healthy_program() {
        let module = ipra_frontend::compile(OK).unwrap();
        check_service(OK, &module).unwrap();
    }

    #[test]
    fn frontend_rejection_is_a_failure() {
        let err = check_source("fn main() { junk±; }", &DiffOptions::default()).unwrap_err();
        assert_eq!(err.config, "frontend");
    }

    #[test]
    fn output_divergence_reports_the_first_index() {
        let msg = diff_outputs(&[1, 2, 9], &[1, 2, 3]);
        assert!(msg.contains("print #2"), "{msg}");
        let msg = diff_outputs(&[1, 2], &[1, 2, 3]);
        assert!(msg.contains("print #2"), "{msg}");
    }
}
