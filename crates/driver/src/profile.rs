//! Block-profile persistence: the simulator's per-block execution counts as
//! a small JSON document, so a training run in one process can feed the
//! priority function of a later compilation (`mini-cc --profile-out` /
//! `--profile-in`).
//!
//! Schema (version 1):
//!
//! ```json
//! {
//!   "version": 1,
//!   "funcs": [ { "name": "main", "counts": [12, 3, 0] } ]
//! }
//! ```
//!
//! Counts are indexed by block id in the function's *post-normalization*
//! block order — the same order [`ipra_sim::SimResult::block_profile`]
//! produces — and functions are matched **by name** when loading, so a
//! profile survives edits to other functions (blocks added or removed in a
//! renamed or changed function simply pad with zeros or truncate).

use ipra_ir::Module;
use ipra_obs::json::Json;

/// Current schema version written by [`profile_to_json`].
pub const PROFILE_FORMAT_VERSION: i64 = 1;

/// Encodes per-function block counts (indexed like
/// `CompiledModule`'s function list) into the version-1 JSON schema.
pub fn profile_to_json(module: &Module, profile: &[Vec<u64>]) -> Json {
    let funcs = module
        .funcs
        .iter()
        .zip(profile.iter())
        .map(|((_, f), counts)| {
            Json::obj(vec![
                ("name", Json::Str(f.name.clone())),
                (
                    "counts",
                    Json::Arr(counts.iter().map(|&c| Json::Int(c as i64)).collect()),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("version", Json::Int(PROFILE_FORMAT_VERSION)),
        ("funcs", Json::Arr(funcs)),
    ])
}

/// Decodes a version-1 profile document against `module`, returning one
/// count vector per function in module order.
///
/// Matching is by function name; functions absent from the document get an
/// all-zero profile (flat weights). Counts are clamped at zero for negative
/// values and the vector is padded/truncated to the function's block count
/// by the consumer, so stale-but-well-formed profiles degrade gracefully.
///
/// # Errors
///
/// Returns a message for structural problems: wrong version, missing
/// `funcs`, or a malformed function entry.
pub fn profile_from_json(doc: &Json, module: &Module) -> Result<Vec<Vec<u64>>, String> {
    let version = doc
        .get("version")
        .and_then(Json::as_i64)
        .ok_or_else(|| "profile: missing `version`".to_string())?;
    if version != PROFILE_FORMAT_VERSION {
        return Err(format!(
            "profile: unsupported version {version} (expected {PROFILE_FORMAT_VERSION})"
        ));
    }
    let funcs = doc
        .get("funcs")
        .and_then(Json::as_arr)
        .ok_or_else(|| "profile: missing `funcs` array".to_string())?;

    let mut by_name: Vec<(String, Vec<u64>)> = Vec::with_capacity(funcs.len());
    for (i, f) in funcs.iter().enumerate() {
        let name = f
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("profile: funcs[{i}] has no `name`"))?;
        let counts = f
            .get("counts")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("profile: funcs[{i}] has no `counts`"))?
            .iter()
            .map(|c| c.as_i64().map(|v| v.max(0) as u64))
            .collect::<Option<Vec<u64>>>()
            .ok_or_else(|| format!("profile: funcs[{i}] has a non-integer count"))?;
        by_name.push((name.to_string(), counts));
    }

    Ok(module
        .funcs
        .iter()
        .map(|(_, f)| {
            by_name
                .iter()
                .find(|(n, _)| *n == f.name)
                .map(|(_, c)| c.clone())
                .unwrap_or_default()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_funcs() -> Module {
        ipra_frontend::compile(
            r#"
            fn leaf(a: int) -> int { if a > 3 { return a + 1; } return a; }
            fn main() { var i: int = 0; while i < 5 { print(leaf(i)); i = i + 1; } }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn round_trips_through_text() {
        let m = two_funcs();
        let profile = vec![vec![5, 2, 3, 5], vec![1, 5, 5, 1]];
        let text = profile_to_json(&m, &profile).render_pretty();
        let doc = ipra_obs::json::parse(&text).unwrap();
        let back = profile_from_json(&doc, &m).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn unknown_functions_get_flat_zero_profiles() {
        let m = two_funcs();
        let doc = ipra_obs::json::parse(r#"{"version":1,"funcs":[{"name":"gone","counts":[9]}]}"#)
            .unwrap();
        let back = profile_from_json(&doc, &m).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back.iter().all(Vec::is_empty));
    }

    #[test]
    fn structural_errors_are_reported() {
        let m = two_funcs();
        assert!(profile_from_json(&ipra_obs::json::parse("{}").unwrap(), &m).is_err());
        let bad = ipra_obs::json::parse(r#"{"version":2,"funcs":[]}"#).unwrap();
        assert!(profile_from_json(&bad, &m).is_err());
        let bad = ipra_obs::json::parse(r#"{"version":1,"funcs":[{"name":"x"}]}"#).unwrap();
        assert!(profile_from_json(&bad, &m).is_err());
    }

    #[test]
    fn real_training_profile_feeds_a_recompile() {
        // File-based analogue of `profile_guided`: train, serialize, parse,
        // recompile with the loaded profile; output must be unchanged.
        let m = two_funcs();
        let config = crate::Config::c();
        let compiled = ipra_core::compile_module(&m, &config.target, &config.opts);
        let sim_opts = ipra_sim::SimOptions::for_target(&config.target.regs).with_block_profile();
        let trained = ipra_sim::run(&compiled.mmodule, &config.target.regs, &sim_opts).unwrap();
        let profile = trained.block_profile.unwrap();

        let text = profile_to_json(&m, &profile).render();
        let loaded = profile_from_json(&ipra_obs::json::parse(&text).unwrap(), &m).unwrap();
        assert_eq!(loaded, profile);

        let recompiled =
            ipra_core::compile_module_with_profile(&m, &config.target, &config.opts, Some(&loaded));
        let r = ipra_sim::run(
            &recompiled.mmodule,
            &config.target.regs,
            &ipra_sim::SimOptions::for_target(&config.target.regs),
        )
        .unwrap();
        assert_eq!(r.output, trained.output);
    }
}
