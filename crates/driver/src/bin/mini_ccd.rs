//! `mini-ccd` — the long-lived compile daemon.
//!
//! ```text
//! mini-ccd --socket <path> [OPTIONS]   serve a Unix socket (one thread
//!                                      per connection, shared pipeline)
//! mini-ccd --stdio [OPTIONS]           serve exactly one session on
//!                                      stdin/stdout, then exit
//!   --max-active <n>   concurrent compiles (default 4)
//!   --max-queue <n>    queued compiles before `busy` (default 64)
//!   --jobs-cap <n>     per-compile wave-scheduler jobs cap (default 4)
//! ```
//!
//! Clients are `mini-cc --remote <socket>` or anything speaking the
//! length-prefixed JSON protocol of `ipra_obs::frame`. A `shutdown`
//! command stops the accept loop after in-flight sessions finish; the
//! socket file is removed on the way out.

use std::os::unix::net::{UnixListener, UnixStream};
use std::process::ExitCode;
use std::sync::Arc;

use ipra_driver::service::{Service, ServiceConfig};

struct DaemonArgs {
    socket: Option<String>,
    stdio: bool,
    config: ServiceConfig,
}

fn usage() -> &'static str {
    "usage: mini-ccd (--socket PATH | --stdio) \
     [--max-active N] [--max-queue N] [--jobs-cap N]"
}

fn parse_args_from(args: impl Iterator<Item = String>) -> Result<DaemonArgs, String> {
    let mut socket = None;
    let mut stdio = false;
    let mut config = ServiceConfig::default();
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--socket" => socket = Some(args.next().ok_or("--socket needs a path")?),
            "--stdio" => stdio = true,
            "--max-active" => {
                let v = args.next().ok_or("--max-active needs a count")?;
                config.max_active = v.trim().parse().map_err(|_| "bad --max-active count")?;
            }
            "--max-queue" => {
                let v = args.next().ok_or("--max-queue needs a count")?;
                config.max_queue = v.trim().parse().map_err(|_| "bad --max-queue count")?;
            }
            "--jobs-cap" => {
                let v = args.next().ok_or("--jobs-cap needs a count")?;
                let cap: usize = v.trim().parse().map_err(|_| "bad --jobs-cap count")?;
                config.jobs_cap = cap.max(1);
            }
            "-h" | "--help" => return Err(usage().to_string()),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    if stdio == socket.is_some() {
        return Err(usage().to_string());
    }
    Ok(DaemonArgs {
        socket,
        stdio,
        config,
    })
}

fn real_main() -> Result<(), String> {
    let args = parse_args_from(std::env::args().skip(1))?;
    let service = Arc::new(Service::new(args.config));

    if args.stdio {
        let served = service
            .serve_session(std::io::stdin().lock(), std::io::stdout().lock())
            .map_err(|e| format!("stdio session failed: {e}"))?;
        eprintln!("[mini-ccd] stdio session served {served} request(s)");
        return Ok(());
    }

    let path = args.socket.expect("checked in parse");
    // A stale socket file from a crashed daemon would fail the bind.
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("[mini-ccd] listening on {path}");

    let mut workers = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) => {
                eprintln!("[mini-ccd] accept failed: {e}");
                continue;
            }
        };
        // A session that accepted a `shutdown` self-connects to unblock
        // this accept; the flag check drops that wake-up connection.
        if service.shutdown_requested() {
            break;
        }
        let svc = Arc::clone(&service);
        let sock = path.clone();
        workers.push(std::thread::spawn(move || {
            match svc.serve_session(&stream, &stream) {
                Ok(_) => {}
                Err(e) => eprintln!("[mini-ccd] session torn down: {e}"),
            }
            if svc.shutdown_requested() {
                let _ = UnixStream::connect(&sock);
            }
        }));
    }
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_file(&path);
    eprintln!("[mini-ccd] shut down cleanly");
    Ok(())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<DaemonArgs, String> {
        parse_args_from(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn socket_and_stdio_are_mutually_exclusive_and_one_is_required() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--socket", "/tmp/s", "--stdio"]).is_err());
        assert!(parse(&["--stdio"]).unwrap().stdio);
        assert_eq!(
            parse(&["--socket", "/tmp/s"]).unwrap().socket.as_deref(),
            Some("/tmp/s")
        );
    }

    #[test]
    fn knobs_parse_with_defaults() {
        let a = parse(&["--stdio"]).unwrap();
        assert_eq!(a.config.max_active, 4);
        assert_eq!(a.config.max_queue, 64);
        assert_eq!(a.config.jobs_cap, 4);
        let b = parse(&[
            "--socket",
            "/tmp/s",
            "--max-active",
            "2",
            "--max-queue",
            "0",
            "--jobs-cap",
            "1",
        ])
        .unwrap();
        assert_eq!(b.config.max_active, 2);
        assert_eq!(b.config.max_queue, 0);
        assert_eq!(b.config.jobs_cap, 1);
    }
}
