//! `convsearch` — sweep calling-convention partitions per register-file
//! shape and report the penalty surface.
//!
//! ```text
//! convsearch [--small] [--jobs N] [--cache-dir DIR] [--out FILE] [--md FILE]
//! ```
//!
//! Compiles the workload suite at every `(caller-saved, argument-regs)`
//! grid point of each register-file shape, requires the static verifier
//! and the interpreter oracle to pass at every point, and writes the
//! penalty surface as deterministic JSON (and optionally markdown). The
//! JSON bytes are independent of `--jobs` and cache temperature; CI diffs
//! them to enforce that.

use std::path::PathBuf;
use std::process::ExitCode;

use ipra_driver::convsearch::{default_shapes, run_search, workload_corpus, SearchOptions};

struct Args {
    small: bool,
    jobs: usize,
    cache_dir: Option<PathBuf>,
    out: Option<PathBuf>,
    md: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: convsearch [--small] [--jobs N] [--cache-dir DIR] [--out FILE] [--md FILE]\n\
         \n\
         Sweeps caller/callee-saved partitions and argument-register counts\n\
         per register-file shape over the workload suite and reports the\n\
         penalty surface.\n\
         \n\
         --small        sparse grid + 3-workload corpus (CI smoke)\n\
         --jobs N       wave-scheduler workers per compile (0 = auto)\n\
         --cache-dir D  incremental-cache directory shared across points\n\
         --out FILE     write the JSON report (default: stdout)\n\
         --md FILE      also write the markdown table"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        small: false,
        jobs: 0,
        cache_dir: None,
        out: None,
        md: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => args.small = true,
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.jobs = v.parse().unwrap_or_else(|_| usage());
            }
            "--cache-dir" => {
                args.cache_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--out" => args.out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--md" => args.md = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let corpus = match workload_corpus(args.small) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("convsearch: {e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = SearchOptions {
        jobs: args.jobs,
        cache_dir: args.cache_dir,
        dense: !args.small,
    };
    let report = run_search(&corpus, &default_shapes(), &opts);

    let json = report.to_json().render_pretty();
    match &args.out {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &json) {
                eprintln!("convsearch: write {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
        }
        None => println!("{json}"),
    }
    if let Some(p) = &args.md {
        if let Err(e) = std::fs::write(p, report.to_markdown()) {
            eprintln!("convsearch: write {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
    }

    for s in &report.shapes {
        let b = &s.points[s.best];
        eprintln!(
            "convsearch: {}: best caller={} callee={} args={} penalty_cycles={}",
            s.shape.name, b.caller, b.callee, b.args, b.penalty_cycles
        );
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "convsearch: {} failing point/program pairs",
            report.failures.len()
        );
        ExitCode::FAILURE
    }
}
