//! `trace-tool` — analysis CLI for `mini-cc --trace-json` documents.
//!
//! ```text
//! trace-tool top   <trace.json> [--by penalty|time] [--limit N]
//! trace-tool diff  <old.json> <new.json> [--threshold PCT] [--min-abs N]
//! trace-tool cache <trace.json>
//! trace-tool flame <trace.json>
//! ```
//!
//! `top` also accepts a metrics-registry document (as written by
//! `mini-cc --remote <socket> --emit metrics`) and renders its counters,
//! gauges and latency histograms instead.
//!
//! `diff` exits 1 when any deterministic penalty quantity regressed past
//! the threshold (default 10%), so CI can gate on it directly. Usage and
//! I/O errors exit 2.

use std::process::ExitCode;

use ipra_driver::tracetool::{self, DiffOptions, TopBy, TraceDoc};
use ipra_obs::json::Json;

fn usage() -> &'static str {
    "usage: trace-tool <subcommand>\n\
     \x20 top   <trace.json | metrics.json> [--by penalty|time] [--limit N]\n\
     \x20 diff  <old.json> <new.json> [--threshold PCT] [--min-abs N]\n\
     \x20 cache <trace.json>\n\
     \x20 flame <trace.json>"
}

fn load_json(path: &str) -> Result<Json, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    ipra_obs::json::parse_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn load(path: &str) -> Result<TraceDoc, String> {
    tracetool::load(&load_json(path)?).map_err(|e| format!("{path}: {e}"))
}

fn real_main(args: &[String]) -> Result<ExitCode, String> {
    let sub = args
        .first()
        .map(String::as_str)
        .ok_or_else(|| usage().to_string())?;
    let rest = &args[1..];
    match sub {
        "top" => {
            let mut path = None;
            let mut by = TopBy::Penalty;
            let mut limit = 10usize;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--by" => {
                        by = match it.next().map(String::as_str) {
                            Some("penalty") => TopBy::Penalty,
                            Some("time") => TopBy::Time,
                            _ => return Err("--by needs penalty|time".into()),
                        }
                    }
                    "--limit" => {
                        limit = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--limit needs a count")?
                    }
                    p if !p.starts_with('-') => path = Some(p.to_string()),
                    other => return Err(format!("unknown option `{other}`\n{}", usage())),
                }
            }
            let path = path.ok_or_else(|| usage().to_string())?;
            let doc = load_json(&path)?;
            if tracetool::is_metrics_doc(&doc) {
                print!("{}", tracetool::metrics_report(&doc, limit));
            } else {
                let doc = tracetool::load(&doc).map_err(|e| format!("{path}: {e}"))?;
                print!("{}", tracetool::top_report(&doc, by, limit));
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let mut paths = Vec::new();
            let mut opts = DiffOptions::default();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--threshold" => {
                        opts.threshold_pct = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--threshold needs a percentage")?
                    }
                    "--min-abs" => {
                        opts.min_abs = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or("--min-abs needs a count")?
                    }
                    p if !p.starts_with('-') => paths.push(p.to_string()),
                    other => return Err(format!("unknown option `{other}`\n{}", usage())),
                }
            }
            let [old, new] = paths.as_slice() else {
                return Err(usage().into());
            };
            let report = tracetool::diff(&load(old)?, &load(new)?, &opts);
            print!("{}", report.text);
            Ok(if report.regressions.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "cache" => {
            let path = rest.first().ok_or_else(|| usage().to_string())?;
            print!("{}", tracetool::cache_report(&load(path)?)?);
            Ok(ExitCode::SUCCESS)
        }
        "flame" => {
            let path = rest.first().ok_or_else(|| usage().to_string())?;
            print!("{}", tracetool::flame(&load(path)?));
            Ok(ExitCode::SUCCESS)
        }
        "-h" | "--help" => Err(usage().into()),
        other => Err(format!("unknown subcommand `{other}`\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match real_main(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
