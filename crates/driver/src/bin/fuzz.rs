//! `fuzz` — differential fuzzing driver.
//!
//! Sweeps deterministic seed ranges through the shaped program generator
//! and checks every generated program against two oracles: the reference
//! interpreter (dynamic — the executed path must print the right values)
//! and the static register-contract verifier (`ipra-verify` — every path
//! must honor the published save/restore and convention contracts), under
//! the full configuration cross-product (all allocator configs, `jobs = 1`
//! vs `jobs = 4` bit-identity, cold vs warm cache). Failing seeds are
//! written to a corpus directory as standalone `.mini` repros and
//! delta-debugged to minimal ones; static-verifier failures carry config
//! `static-verify/<name>` and reduce exactly like interpreter mismatches.
//!
//! ```text
//! fuzz [OPTIONS]
//!   --seeds <n>        seeds per shape class (default 200)
//!   --start <s>        first seed (default 0)
//!   --shape <name>     restrict to one shape class (repeatable);
//!                      names: acyclic recursive fanout fnptr arity
//!   --fuel <n>         interpreter instruction budget per seed
//!   --corpus <dir>     where to write failing repros (default fuzz-corpus)
//!   --cache-every <n>  cold/warm cache check every n-th seed (default 10,
//!                      0 = never)
//!   --quiet            suppress per-shape progress lines
//! ```
//!
//! Exit status: 0 when every checked seed passed (skips are fine), 1 when
//! any seed failed, 2 on a usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use ipra_driver::differential::{check_module, check_source, DiffOptions, DiffVerdict};
use ipra_workloads::reduce::{reduce, ReduceOptions};
use ipra_workloads::synth::{shaped_source, ShapeClass, ShapeConfig, ShapeStats};

struct Args {
    seeds: u64,
    start: u64,
    shapes: Vec<ShapeClass>,
    fuel: u64,
    corpus: PathBuf,
    cache_every: u64,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: fuzz [--seeds N] [--start S] [--shape NAME] [--fuel N] \
     [--corpus DIR] [--cache-every N] [--quiet]"
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        seeds: 200,
        start: 0,
        shapes: Vec::new(),
        // Generous enough that virtually every generated program finishes,
        // small enough that a pathological seed is skipped in milliseconds.
        fuel: 20_000_000,
        corpus: PathBuf::from("fuzz-corpus"),
        cache_every: 10,
        quiet: false,
    };
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => {
                let v = args.next().ok_or("--seeds needs a count")?;
                out.seeds = v.parse().map_err(|_| format!("bad seed count `{v}`"))?;
            }
            "--start" => {
                let v = args.next().ok_or("--start needs a seed")?;
                out.start = v.parse().map_err(|_| format!("bad start seed `{v}`"))?;
            }
            "--shape" => {
                let v = args.next().ok_or("--shape needs a name")?;
                let c = ShapeClass::by_name(&v).ok_or(format!(
                    "unknown shape `{v}` (try: acyclic recursive fanout fnptr arity)"
                ))?;
                out.shapes.push(c);
            }
            "--fuel" => {
                let v = args.next().ok_or("--fuel needs a budget")?;
                out.fuel = v.parse().map_err(|_| format!("bad fuel `{v}`"))?;
            }
            "--corpus" => {
                out.corpus = PathBuf::from(args.next().ok_or("--corpus needs a directory")?);
            }
            "--cache-every" => {
                let v = args.next().ok_or("--cache-every needs a count")?;
                out.cache_every = v.parse().map_err(|_| format!("bad count `{v}`"))?;
            }
            "--quiet" => out.quiet = true,
            "-h" | "--help" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if out.shapes.is_empty() {
        out.shapes = ShapeClass::ALL.to_vec();
    }
    Ok(out)
}

/// Writes a standalone repro for a failing seed: the source, prefixed with
/// comments recording the shape, seed and failure, so the corpus
/// regression test (and a human) can replay it without the generator.
fn persist_failure(
    corpus: &std::path::Path,
    class: ShapeClass,
    seed: u64,
    cfg: &ShapeConfig,
    source: &str,
    failure: &str,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(corpus)?;
    let path = corpus.join(format!("{class}-{seed}.mini"));
    let header = format!(
        "// fuzz failure: shape {class} seed {seed}\n// {failure}\n// shape config: {cfg:?}\n",
    );
    std::fs::write(&path, format!("{header}{source}"))?;
    Ok(path)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let cache_root = std::env::temp_dir().join(format!("ipra-fuzz-{}", std::process::id()));
    let mut failures = 0u64;
    let mut total = (0u64, 0u64, 0u64); // checked, passed, skipped
    let mut grand = ShapeStats::default();

    for class in &args.shapes {
        let class = *class;
        let shape_cfg = ShapeConfig::new(class);
        let mut stats = ShapeStats::default();
        let (mut passed, mut skipped) = (0u64, 0u64);

        for seed in args.start..args.start + args.seeds {
            let source = shaped_source(seed, &shape_cfg);
            let module = match ipra_frontend::compile(&source) {
                Ok(m) => m,
                Err(e) => {
                    let what = format!("frontend rejected generated source: {e}");
                    report_failure(&args, class, seed, &shape_cfg, &source, &what);
                    failures += 1;
                    continue;
                }
            };
            stats.absorb(&ShapeStats::collect(&module));

            let mut opts = DiffOptions::default().with_fuel(args.fuel);
            if args.cache_every > 0 && (seed - args.start) % args.cache_every == 0 {
                opts = opts.with_cache_root(&cache_root);
            }
            match check_module(&module, &opts) {
                Ok(DiffVerdict::Pass) => passed += 1,
                Ok(DiffVerdict::Skipped(_)) => skipped += 1,
                Err(f) => {
                    report_failure(&args, class, seed, &shape_cfg, &source, &f.to_string());
                    failures += 1;
                }
            }
        }

        if !args.quiet {
            println!(
                "shape {class:>9}: {} seeds, {passed} passed, {skipped} skipped, \
                 open {} / closed {}, recursive {}, indirect sites {}, \
                 max depth {}, max arity {}",
                args.seeds,
                stats.open_funcs,
                stats.closed_funcs,
                stats.recursive_funcs,
                stats.indirect_sites,
                stats.max_call_depth,
                stats.max_arity,
            );
        }
        total.0 += args.seeds;
        total.1 += passed;
        total.2 += skipped;
        grand.absorb(&stats);
    }
    let _ = std::fs::remove_dir_all(&cache_root);

    println!(
        "fuzz: {} seeds checked, {} passed, {} skipped, {} failed \
         (corpus open {} / closed {} procedures)",
        total.0, total.1, total.2, failures, grand.open_funcs, grand.closed_funcs
    );
    if grand.open_funcs == 0 || grand.closed_funcs == 0 {
        eprintln!("fuzz: WARNING: corpus is not calibrated — one openness class is empty");
    }
    if failures > 0 {
        eprintln!(
            "fuzz: {failures} failing seed(s) written to {}",
            args.corpus.display()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn report_failure(
    args: &Args,
    class: ShapeClass,
    seed: u64,
    cfg: &ShapeConfig,
    source: &str,
    what: &str,
) {
    eprintln!("fuzz: FAIL shape {class} seed {seed}: {what}");
    match persist_failure(&args.corpus, class, seed, cfg, source, what) {
        Ok(p) => eprintln!("fuzz:   repro written to {}", p.display()),
        Err(e) => eprintln!("fuzz:   could not write repro: {e}"),
    }
    minimize_failure(args, class, seed, cfg, source);
}

/// Delta-debugs a failing source down to a minimal repro that still fails
/// the differential check *with the same config*, and writes it next to
/// the full repro as `<shape>-<seed>.min.mini`. Best effort: a repro that
/// stops reproducing mid-reduction just skips the minimized file.
fn minimize_failure(args: &Args, class: ShapeClass, seed: u64, cfg: &ShapeConfig, source: &str) {
    // Identify the failure by its config so reduction cannot wander off
    // to some unrelated breakage. The cache leg is excluded: it is the
    // only stateful check, and its scratch directories would be churned
    // thousands of times during reduction.
    let opts = DiffOptions::default().with_fuel(args.fuel);
    let failed_config = match check_source(source, &opts) {
        Err(f) => f.config,
        Ok(_) => return, // only the cache leg failed; nothing to chase
    };
    let still_fails =
        |s: &str| matches!(check_source(s, &opts), Err(f) if f.config == failed_config);
    let budget = ReduceOptions { max_tests: 3_000 };
    match reduce(source, still_fails, &budget) {
        Ok((minimal, stats)) => {
            let path = args.corpus.join(format!("{class}-{seed}.min.mini"));
            let header = format!(
                "// minimized fuzz failure: shape {class} seed {seed} (config {failed_config})\n\
                 // reduced {} -> {} lines in {} tests\n// shape config: {cfg:?}\n",
                stats.initial_lines, stats.final_lines, stats.tested
            );
            match std::fs::write(&path, format!("{header}{minimal}")) {
                Ok(()) => eprintln!("fuzz:   minimized to {}", path.display()),
                Err(e) => eprintln!("fuzz:   could not write minimized repro: {e}"),
            }
        }
        Err(e) => eprintln!("fuzz:   reduction skipped: {e}"),
    }
}
