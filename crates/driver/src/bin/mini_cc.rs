//! `mini-cc` — the command-line compiler driver.
//!
//! ```text
//! mini-cc [OPTIONS] <file.mini>
//!   -O0 | -O2 | -O3        optimization level (default -O3)
//!   --no-shrink-wrap       disable save/restore shrink-wrapping
//!   --limit <nc>,<ne>      restrict allocatable registers per class
//!   --emit ir|asm|summary  print IR, machine code, or per-function report
//!   --run                  simulate and print output + statistics
//!   --trace                print the compile/execution trace to stderr
//!   --trace-json <path>    write the trace as JSON to <path>
//!   --jobs <n>             wave-scheduler worker threads (0 = auto, 1 = serial)
//!   --workload <name>      compile a bundled benchmark instead of a file
//! ```

use std::process::ExitCode;

use ipra_core::config::{AllocMode, AllocOptions};
use ipra_driver::{run_compiled, CompileTrace, Config};
use ipra_machine::Target;

struct Args {
    opts: AllocOptions,
    target: Target,
    emit: Option<String>,
    run: bool,
    trace: bool,
    trace_json: Option<String>,
    input: Input,
}

enum Input {
    File(String),
    Workload(String),
}

fn usage() -> &'static str {
    "usage: mini-cc [-O0|-O2|-O3] [--no-shrink-wrap] [--limit NC,NE] \
     [--emit ir|asm|summary] [--run] [--trace] [--trace-json PATH] \
     [--jobs N] (<file.mini> | --workload <name>)"
}

fn parse_args_from(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut opts = AllocOptions::o3();
    let mut target = Target::mips_like();
    let mut emit = None;
    let mut run = false;
    let mut trace = false;
    let mut trace_json = None;
    let mut input = None;
    // `-O2`/`-O3` replace the whole option set, so `--no-shrink-wrap` and
    // `--jobs` are remembered separately and applied after the flag loop —
    // otherwise `--no-shrink-wrap -O3` would silently re-enable
    // shrink-wrapping (and likewise reset the job count).
    let mut no_shrink_wrap = false;
    let mut jobs = None;

    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "-O0" => opts = AllocOptions::no_alloc(),
            "-O2" => opts = AllocOptions::o2_shrink_wrap(),
            "-O3" => opts = AllocOptions::o3(),
            "--no-shrink-wrap" => no_shrink_wrap = true,
            "--limit" => {
                let v = args.next().ok_or("--limit needs NC,NE")?;
                let (nc, ne) = v.split_once(',').ok_or("--limit needs NC,NE")?;
                let nc: usize = nc.trim().parse().map_err(|_| "bad NC")?;
                let ne: usize = ne.trim().parse().map_err(|_| "bad NE")?;
                target = Target::with_class_limits(nc, ne);
            }
            "--emit" => emit = Some(args.next().ok_or("--emit needs a kind")?),
            "--run" => run = true,
            "--trace" => trace = true,
            "--trace-json" => trace_json = Some(args.next().ok_or("--trace-json needs a path")?),
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a count")?;
                jobs = Some(v.trim().parse::<usize>().map_err(|_| "bad --jobs count")?);
            }
            "--workload" => {
                input = Some(Input::Workload(
                    args.next().ok_or("--workload needs a name")?,
                ))
            }
            "-h" | "--help" => return Err(usage().to_string()),
            other if !other.starts_with('-') => input = Some(Input::File(other.to_string())),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    if no_shrink_wrap {
        opts.shrink_wrap = false;
    }
    if let Some(j) = jobs {
        opts.jobs = j;
    }
    let input = input.ok_or_else(|| usage().to_string())?;
    Ok(Args {
        opts,
        target,
        emit,
        run,
        trace,
        trace_json,
        input,
    })
}

fn real_main() -> Result<(), String> {
    let args = parse_args_from(std::env::args().skip(1))?;
    let source = match &args.input {
        Input::File(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        Input::Workload(name) => ipra_workloads::by_name(name)
            .ok_or_else(|| {
                let names: Vec<_> = ipra_workloads::all()
                    .iter()
                    .map(|w| w.name.to_string())
                    .collect();
                format!("unknown workload `{name}`; available: {}", names.join(", "))
            })?
            .source
            .to_string(),
    };

    let module = ipra_frontend::compile(&source).map_err(|e| format!("compile error: {e}"))?;
    let config = Config {
        name: match args.opts.mode {
            AllocMode::NoAlloc => "-O0".into(),
            AllocMode::Intra => "-O2".into(),
            AllocMode::Inter => "-O3".into(),
        },
        target: args.target,
        opts: args.opts,
    };

    // Compile once (with tracing when requested) and reuse the result for
    // every emit kind and the run.
    let tracing = args.trace || args.trace_json.is_some();
    if tracing {
        ipra_obs::enable();
    }
    let compiled = ipra_core::ipra::compile_module(&module, &config.target, &config.opts);
    let raw_trace = if tracing {
        Some(ipra_obs::disable())
    } else {
        None
    };

    match args.emit.as_deref() {
        Some("ir") => println!("{module}"),
        Some("asm") => {
            for (_, f) in compiled.mmodule.funcs.iter() {
                println!("{}", f.display_in(&config.target.regs, &compiled.mmodule));
            }
        }
        Some("summary") => {
            for (report, summary) in compiled.reports.iter().zip(&compiled.summaries) {
                println!(
                    "{:<16} open={:<5} used={:?} saved={:?} clobbers={:?} sw-iters={} \
                     vregs={} mem={} split={}",
                    report.name,
                    !report.open_reasons.is_empty() || report.forced_open,
                    report.used,
                    report.locally_saved,
                    summary.clobbers,
                    report.shrink_iterations,
                    report.candidate_vregs,
                    report.memory_vregs,
                    report.split_vregs,
                );
            }
            println!(
                "globals promoted: {} ({} accesses rewritten)",
                compiled.promotion.promoted, compiled.promotion.accesses_rewritten
            );
        }
        Some(other) => return Err(format!("unknown --emit kind `{other}`")),
        None => {}
    }

    let mut stats = None;
    if args.run || args.emit.is_none() {
        let m = run_compiled(&compiled, &config).map_err(|t| format!("runtime trap: {t}"))?;
        for v in &m.output {
            println!("{v}");
        }
        eprintln!(
            "[{}] cycles: {}  insts: {}  calls: {}  loads: {}  stores: {}  scalar l/s: {}  cycles/call: {:.1}",
            config.name,
            m.stats.cycles,
            m.stats.insts,
            m.stats.calls,
            m.stats.total_loads(),
            m.stats.total_stores(),
            m.stats.scalar_mem(),
            m.stats.cycles_per_call()
        );
        stats = Some(m.stats);
    }

    if let Some(raw) = raw_trace {
        let trace = CompileTrace::build(&config.name, &raw, &compiled, stats.as_ref());
        if args.trace {
            eprint!("{}", trace.render_text());
        }
        if let Some(path) = &args.trace_json {
            std::fs::write(path, trace.to_json().render_pretty())
                .map_err(|e| format!("{path}: {e}"))?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        parse_args_from(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn no_shrink_wrap_survives_later_opt_level() {
        // The footgun: `-O3` replaces the whole option set, which used to
        // silently re-enable shrink-wrapping requested off earlier.
        let a = parse(&["--no-shrink-wrap", "-O3", "x.mini"]);
        assert!(!a.opts.shrink_wrap);
        let b = parse(&["--no-shrink-wrap", "-O2", "x.mini"]);
        assert!(!b.opts.shrink_wrap);
        let c = parse(&["-O3", "--no-shrink-wrap", "x.mini"]);
        assert!(!c.opts.shrink_wrap);
    }

    #[test]
    fn shrink_wrap_on_by_default_at_o3() {
        let a = parse(&["-O3", "x.mini"]);
        assert!(a.opts.shrink_wrap);
    }

    #[test]
    fn jobs_flag_parses_and_survives_opt_level() {
        let a = parse(&["--jobs", "4", "-O3", "x.mini"]);
        assert_eq!(a.opts.jobs, 4);
        let b = parse(&["-O2", "--jobs", "1", "x.mini"]);
        assert_eq!(b.opts.jobs, 1);
        let c = parse(&["x.mini"]);
        assert_eq!(c.opts.jobs, 0, "default: auto");
    }

    #[test]
    fn trace_flags_parse() {
        let a = parse(&["--trace", "--trace-json", "t.json", "--run", "x.mini"]);
        assert!(a.trace && a.run);
        assert_eq!(a.trace_json.as_deref(), Some("t.json"));
        let b = parse(&["x.mini"]);
        assert!(!b.trace && b.trace_json.is_none());
    }
}
