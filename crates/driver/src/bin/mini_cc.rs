//! `mini-cc` — the command-line compiler driver.
//!
//! ```text
//! mini-cc [OPTIONS] <file.mini>
//!   -O0 | -O2 | -O3        optimization level (default -O3)
//!   --no-shrink-wrap       disable save/restore shrink-wrapping
//!   --limit <nc>,<ne>      restrict allocatable registers per class
//!   --emit ir|asm|summary  print IR, machine code, or per-function report
//!   --run                  simulate and print output + statistics
//!   --workload <name>      compile a bundled benchmark instead of a file
//! ```

use std::process::ExitCode;

use ipra_core::config::{AllocMode, AllocOptions};
use ipra_driver::{compile_only, run_compiled, Config};
use ipra_machine::Target;

struct Args {
    opts: AllocOptions,
    target: Target,
    emit: Option<String>,
    run: bool,
    input: Input,
}

enum Input {
    File(String),
    Workload(String),
}

fn usage() -> &'static str {
    "usage: mini-cc [-O0|-O2|-O3] [--no-shrink-wrap] [--limit NC,NE] \
     [--emit ir|asm|summary] [--run] (<file.mini> | --workload <name>)"
}

fn parse_args() -> Result<Args, String> {
    let mut opts = AllocOptions::o3();
    let mut target = Target::mips_like();
    let mut emit = None;
    let mut run = false;
    let mut input = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-O0" => opts = AllocOptions::no_alloc(),
            "-O2" => opts = AllocOptions::o2_shrink_wrap(),
            "-O3" => opts = AllocOptions::o3(),
            "--no-shrink-wrap" => opts.shrink_wrap = false,
            "--limit" => {
                let v = args.next().ok_or("--limit needs NC,NE")?;
                let (nc, ne) = v.split_once(',').ok_or("--limit needs NC,NE")?;
                let nc: usize = nc.trim().parse().map_err(|_| "bad NC")?;
                let ne: usize = ne.trim().parse().map_err(|_| "bad NE")?;
                target = Target::with_class_limits(nc, ne);
            }
            "--emit" => emit = Some(args.next().ok_or("--emit needs a kind")?),
            "--run" => run = true,
            "--workload" => {
                input = Some(Input::Workload(args.next().ok_or("--workload needs a name")?))
            }
            "-h" | "--help" => return Err(usage().to_string()),
            other if !other.starts_with('-') => input = Some(Input::File(other.to_string())),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    let input = input.ok_or_else(|| usage().to_string())?;
    Ok(Args { opts, target, emit, run, input })
}

fn real_main() -> Result<(), String> {
    let args = parse_args()?;
    let source = match &args.input {
        Input::File(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
        }
        Input::Workload(name) => ipra_workloads::by_name(name)
            .ok_or_else(|| {
                let names: Vec<_> =
                    ipra_workloads::all().iter().map(|w| w.name.to_string()).collect();
                format!("unknown workload `{name}`; available: {}", names.join(", "))
            })?
            .source
            .to_string(),
    };

    let module = ipra_frontend::compile(&source).map_err(|e| format!("compile error: {e}"))?;
    let config = Config {
        name: match args.opts.mode {
            AllocMode::NoAlloc => "-O0".into(),
            AllocMode::Intra => "-O2".into(),
            AllocMode::Inter => "-O3".into(),
        },
        target: args.target,
        opts: args.opts,
    };

    match args.emit.as_deref() {
        Some("ir") => println!("{module}"),
        Some("asm") => {
            let compiled = compile_only(&module, &config);
            for (_, f) in compiled.mmodule.funcs.iter() {
                println!("{}", f.display_in(&config.target.regs, &compiled.mmodule));
            }
        }
        Some("summary") => {
            let compiled = compile_only(&module, &config);
            for (report, summary) in compiled.reports.iter().zip(&compiled.summaries) {
                println!(
                    "{:<16} open={:<5} used={:?} saved={:?} clobbers={:?} sw-iters={}",
                    report.name,
                    !report.open_reasons.is_empty() || report.forced_open,
                    report.used,
                    report.locally_saved,
                    summary.clobbers,
                    report.shrink_iterations
                );
            }
            println!(
                "globals promoted: {} ({} accesses rewritten)",
                compiled.promotion.promoted, compiled.promotion.accesses_rewritten
            );
        }
        Some(other) => return Err(format!("unknown --emit kind `{other}`")),
        None => {}
    }

    if args.run || args.emit.is_none() {
        let compiled = compile_only(&module, &config);
        let m = run_compiled(&compiled, &config).map_err(|t| format!("runtime trap: {t}"))?;
        for v in &m.output {
            println!("{v}");
        }
        eprintln!(
            "[{}] cycles: {}  insts: {}  calls: {}  loads: {}  stores: {}  scalar l/s: {}  cycles/call: {:.1}",
            config.name,
            m.stats.cycles,
            m.stats.insts,
            m.stats.calls,
            m.stats.total_loads(),
            m.stats.total_stores(),
            m.stats.scalar_mem(),
            m.stats.cycles_per_call()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
