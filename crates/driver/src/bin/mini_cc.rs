//! `mini-cc` — the command-line compiler driver.
//!
//! ```text
//! mini-cc [OPTIONS] <file.mini>
//!   -O0 | -O2 | -O3        optimization level (default -O3)
//!   --no-shrink-wrap       disable save/restore shrink-wrapping
//!   --limit <nc>,<ne>      restrict allocatable registers per class
//!   --target <name>        compile for a named target from the registry
//!                          (mips-like, table2-d, table2-e, embedded8,
//!                          searched) or an anonymous convention point
//!                          conv:POOL,CALLER,ARGS
//!   --emit ir|asm|summary  print IR, machine code, or per-function report
//!   --run                  simulate and print output + statistics
//!   --trace                print the compile/execution trace to stderr
//!   --trace-json <path>    write the trace as JSON to <path>
//!   --trace-chrome <path>  write a Chrome/Perfetto trace-event file to <path>
//!   --jobs <n>             wave-scheduler worker threads (0 = auto, 1 = serial)
//!   --cache-dir <dir>      incremental allocation cache directory
//!   --verify-mc            statically verify register contracts of the
//!                          lowered code (default on in debug builds)
//!   --no-verify-mc         skip the static verifier
//!   --profile-out <file>   run, then write per-block execution counts as JSON
//!   --profile-in <file>    recompile with a previously written profile
//!   --inline               run the profile-guided inliner before allocation
//!                          (ranks direct call sites by profile count ×
//!                          estimated save/restore penalty; pairs with
//!                          --profile-in, falls back to static ranking)
//!   --inline-budget <n>    instruction-growth budget for --inline
//!                          (default 48); the IPRA_INLINE env var can
//!                          force the pass on (1/on/true) or off
//!                          (0/off/false) regardless of the flag
//!   --workload <name>      compile a bundled benchmark instead of a file
//!   --remote <socket>      send the compile to a running mini-ccd instead
//!                          of compiling locally (same options, same output)
//!   --ping                 with --remote: check the daemon is alive
//!   --shutdown             with --remote: ask the daemon to shut down
//! ```
//!
//! With `--remote`, `--emit metrics` fetches the daemon's metrics
//! registry as JSON (readable by `trace-tool top`).

use std::process::ExitCode;

use ipra_core::config::{AllocMode, AllocOptions};
use ipra_driver::{profile_from_json, profile_to_json, run_compiled, CompileTrace, Config};
use ipra_machine::Target;

struct Args {
    opts: AllocOptions,
    target: Target,
    /// `--limit NC,NE` as given, for forwarding to a remote daemon.
    limit: Option<(usize, usize)>,
    /// `--target NAME` as given, for forwarding to a remote daemon.
    target_name: Option<String>,
    emit: Option<String>,
    run: bool,
    trace: bool,
    trace_json: Option<String>,
    trace_chrome: Option<String>,
    profile_out: Option<String>,
    profile_in: Option<String>,
    verify_mc: bool,
    remote: Option<String>,
    ping: bool,
    shutdown: bool,
    input: Option<Input>,
}

enum Input {
    File(String),
    Workload(String),
}

fn usage() -> &'static str {
    "usage: mini-cc [-O0|-O2|-O3] [--no-shrink-wrap] [--limit NC,NE] \
     [--target NAME|conv:P,C,A] \
     [--emit ir|asm|summary] [--run] [--trace] [--trace-json PATH] \
     [--trace-chrome PATH] [--jobs N] [--cache-dir DIR] [--profile-out PATH] [--profile-in PATH] \
     [--inline] [--inline-budget N] \
     [--verify-mc | --no-verify-mc] [--remote SOCKET [--ping | --shutdown]] \
     (<file.mini> | --workload <name>)"
}

fn parse_args_from(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut opts = AllocOptions::o3();
    let mut target = Target::mips_like();
    let mut emit = None;
    let mut run = false;
    let mut trace = false;
    let mut trace_json = None;
    let mut trace_chrome = None;
    let mut profile_out = None;
    let mut profile_in = None;
    // The static verifier is cheap relative to a compile, so debug builds
    // run it by default; release builds opt in with --verify-mc.
    let mut verify_mc = cfg!(debug_assertions);
    let mut remote = None;
    let mut ping = false;
    let mut shutdown = false;
    let mut limit = None;
    let mut target_name = None;
    let mut input = None;
    // `-O2`/`-O3` replace the whole option set, so `--no-shrink-wrap`,
    // `--jobs` and `--cache-dir` are remembered separately and applied
    // after the flag loop — otherwise `--no-shrink-wrap -O3` would
    // silently re-enable shrink-wrapping (and likewise reset the job
    // count or drop the cache directory).
    let mut no_shrink_wrap = false;
    let mut jobs = None;
    let mut cache_dir = None;
    let mut inline = false;
    let mut inline_budget = None;

    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "-O0" => opts = AllocOptions::no_alloc(),
            "-O2" => opts = AllocOptions::o2_shrink_wrap(),
            "-O3" => opts = AllocOptions::o3(),
            "--no-shrink-wrap" => no_shrink_wrap = true,
            "--limit" => {
                let v = args.next().ok_or("--limit needs NC,NE")?;
                let (nc, ne) = v.split_once(',').ok_or("--limit needs NC,NE")?;
                let nc: usize = nc.trim().parse().map_err(|_| "bad NC")?;
                let ne: usize = ne.trim().parse().map_err(|_| "bad NE")?;
                if nc > 11 || ne > 9 {
                    return Err("--limit is at most 11,9 for the mips family".into());
                }
                target = Target::with_class_limits(nc, ne);
                limit = Some((nc, ne));
            }
            "--target" => {
                let v = args.next().ok_or("--target needs a name")?;
                target = Target::parse(&v)?;
                target_name = Some(v);
            }
            "--emit" => emit = Some(args.next().ok_or("--emit needs a kind")?),
            "--run" => run = true,
            "--trace" => trace = true,
            "--trace-json" => trace_json = Some(args.next().ok_or("--trace-json needs a path")?),
            "--trace-chrome" => {
                trace_chrome = Some(args.next().ok_or("--trace-chrome needs a path")?)
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a count")?;
                jobs = Some(v.trim().parse::<usize>().map_err(|_| "bad --jobs count")?);
            }
            "--cache-dir" => cache_dir = Some(args.next().ok_or("--cache-dir needs a directory")?),
            "--verify-mc" => verify_mc = true,
            "--no-verify-mc" => verify_mc = false,
            "--profile-out" => profile_out = Some(args.next().ok_or("--profile-out needs a path")?),
            "--profile-in" => profile_in = Some(args.next().ok_or("--profile-in needs a path")?),
            "--inline" => inline = true,
            "--inline-budget" => {
                let v = args.next().ok_or("--inline-budget needs a count")?;
                inline_budget = Some(
                    v.trim()
                        .parse::<u32>()
                        .map_err(|_| "bad --inline-budget count")?,
                );
            }
            "--workload" => {
                input = Some(Input::Workload(
                    args.next().ok_or("--workload needs a name")?,
                ))
            }
            "--remote" => remote = Some(args.next().ok_or("--remote needs a socket path")?),
            "--ping" => ping = true,
            "--shutdown" => shutdown = true,
            "-h" | "--help" => return Err(usage().to_string()),
            other if !other.starts_with('-') => input = Some(Input::File(other.to_string())),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
    }
    if no_shrink_wrap {
        opts.shrink_wrap = false;
    }
    if let Some(j) = jobs {
        opts.jobs = j;
    }
    if let Some(d) = cache_dir {
        opts.cache_dir = Some(std::path::PathBuf::from(d));
    }
    if inline {
        opts.inline = true;
    }
    if let Some(b) = inline_budget {
        opts.inline_budget = b;
    }
    if limit.is_some() && target_name.is_some() {
        return Err("--limit and --target are mutually exclusive".to_string());
    }
    if (ping || shutdown) && remote.is_none() {
        return Err("--ping/--shutdown require --remote".to_string());
    }
    // Daemon-management commands and `--emit metrics` need no input file;
    // everything else does.
    let daemon_cmd = remote.is_some() && (ping || shutdown || emit.as_deref() == Some("metrics"));
    if input.is_none() && !daemon_cmd {
        return Err(usage().to_string());
    }
    Ok(Args {
        opts,
        target,
        limit,
        target_name,
        emit,
        run,
        trace,
        trace_json,
        trace_chrome,
        profile_out,
        profile_in,
        verify_mc,
        remote,
        ping,
        shutdown,
        input,
    })
}

/// Client mode: forward the compile (or a management command) to a
/// running `mini-ccd` over its Unix socket. Options are forwarded field
/// for field, so the daemon's output is byte-identical to a local
/// compile under the same flags.
fn remote_main(socket: &str, args: &Args) -> Result<(), String> {
    use ipra_driver::service::{roundtrip, CompileRequest, RequestSource};
    use ipra_obs::json::Json;

    let mut stream =
        std::os::unix::net::UnixStream::connect(socket).map_err(|e| format!("{socket}: {e}"))?;
    let ask = |stream: &mut std::os::unix::net::UnixStream, req: &Json| {
        roundtrip(stream, req).map_err(|e| format!("{socket}: {e}"))
    };

    if args.shutdown {
        let resp = ask(
            &mut stream,
            &Json::obj(vec![("cmd", Json::Str("shutdown".into()))]),
        )?;
        if resp.get("status").and_then(Json::as_str) != Some("ok") {
            return Err(format!("shutdown refused: {}", resp.render()));
        }
        eprintln!("[mini-ccd] shutting down");
        return Ok(());
    }
    if args.ping {
        let resp = ask(
            &mut stream,
            &Json::obj(vec![("cmd", Json::Str("ping".into()))]),
        )?;
        if resp.get("pong") != Some(&Json::Bool(true)) {
            return Err(format!("unexpected ping response: {}", resp.render()));
        }
        println!("pong");
        return Ok(());
    }
    if args.emit.as_deref() == Some("metrics") {
        let resp = ask(
            &mut stream,
            &Json::obj(vec![("cmd", Json::Str("metrics".into()))]),
        )?;
        let m = resp
            .get("metrics")
            .ok_or_else(|| format!("no metrics in response: {}", resp.render()))?;
        println!("{}", m.render_pretty());
        return Ok(());
    }

    if args.profile_out.is_some() || args.profile_in.is_some() {
        return Err("profile feedback is not supported with --remote".to_string());
    }
    if args.trace || args.trace_chrome.is_some() {
        return Err(
            "with --remote, use --trace-json (the daemon returns the trace document)".to_string(),
        );
    }
    match args.emit.as_deref() {
        None | Some("asm") => {}
        Some(other) => return Err(format!("--emit {other} is not supported with --remote")),
    }

    // The client reads files itself and ships the source inline, so the
    // daemon never depends on the client's filesystem layout.
    let source = match args.input.as_ref().expect("validated in parse") {
        Input::File(path) => RequestSource::Source(
            std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        ),
        Input::Workload(name) => RequestSource::Workload(name.clone()),
    };
    let mut req = CompileRequest::new(1, source);
    req.opt = match args.opts.mode {
        AllocMode::NoAlloc => "O0".into(),
        AllocMode::Intra => "O2".into(),
        AllocMode::Inter => "O3".into(),
    };
    req.shrink_wrap = Some(args.opts.shrink_wrap);
    req.jobs = args.opts.jobs;
    req.limit = args.limit;
    req.target = args.target_name.clone();
    req.cache_dir = args
        .opts
        .cache_dir
        .as_ref()
        .map(|p| p.display().to_string());
    if args.opts.inline {
        req.inline = Some(true);
        req.inline_budget = Some(args.opts.inline_budget);
    }
    req.run = args.run || args.emit.is_none();
    req.trace = args.trace_json.is_some();

    let resp = ask(&mut stream, &req.to_json())?;
    match resp.get("status").and_then(Json::as_str) {
        Some("ok") => {}
        Some("busy") => {
            return Err(format!(
                "daemon busy: {}",
                resp.get("error").and_then(Json::as_str).unwrap_or("")
            ))
        }
        _ => {
            return Err(resp
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("malformed daemon response")
                .to_string())
        }
    }
    if let Some(c) = resp.get("cache") {
        if c.get("enabled") == Some(&Json::Bool(true)) {
            eprintln!(
                "[cache] hits: {}  misses: {}  cutoffs: {}",
                c.get("hits").and_then(Json::as_i64).unwrap_or(0),
                c.get("misses").and_then(Json::as_i64).unwrap_or(0),
                c.get("cutoffs").and_then(Json::as_i64).unwrap_or(0)
            );
        }
    }
    if resp.get("warm") == Some(&Json::Bool(true)) {
        eprintln!("[remote] warm: replayed from the daemon's analysis memo");
    }
    if args.emit.as_deref() == Some("asm") {
        if let Some(asm) = resp.get("asm").and_then(Json::as_str) {
            print!("{asm}");
        }
    }
    if let Some(out) = resp.get("output").and_then(Json::as_arr) {
        for v in out {
            if let Some(v) = v.as_i64() {
                println!("{v}");
            }
        }
    }
    if let Some(stats) = resp.get("stats") {
        let g = |k: &str| stats.get(k).and_then(Json::as_i64).unwrap_or(0);
        let calls = g("calls");
        let cpc = if calls > 0 {
            g("cycles") as f64 / calls as f64
        } else {
            0.0
        };
        eprintln!(
            "[{}] cycles: {}  insts: {}  calls: {}  loads: {}  stores: {}  scalar l/s: {}  cycles/call: {:.1}",
            resp.get("config").and_then(Json::as_str).unwrap_or("?"),
            g("cycles"),
            g("insts"),
            calls,
            g("loads"),
            g("stores"),
            g("scalar_mem"),
            cpc
        );
    }
    if let Some(path) = &args.trace_json {
        let trace = resp
            .get("trace")
            .ok_or("daemon response carries no trace document")?;
        std::fs::write(path, trace.render_pretty()).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

fn real_main() -> Result<(), String> {
    let args = parse_args_from(std::env::args().skip(1))?;
    if let Some(socket) = args.remote.clone() {
        return remote_main(&socket, &args);
    }
    let source = match args.input.as_ref().ok_or_else(|| usage().to_string())? {
        Input::File(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        Input::Workload(name) => ipra_workloads::by_name(name)
            .ok_or_else(|| {
                let names: Vec<_> = ipra_workloads::all()
                    .iter()
                    .map(|w| w.name.to_string())
                    .collect();
                format!("unknown workload `{name}`; available: {}", names.join(", "))
            })?
            .source
            .to_string(),
    };

    let module = ipra_frontend::compile(&source).map_err(|e| format!("compile error: {e}"))?;
    let loaded_profile = match &args.profile_in {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let doc = ipra_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            Some(profile_from_json(&doc, &module).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let config = Config {
        name: match args.opts.mode {
            AllocMode::NoAlloc => "-O0".into(),
            AllocMode::Intra => "-O2".into(),
            AllocMode::Inter => "-O3".into(),
        },
        target: args.target,
        opts: args.opts,
    };

    // Compile once (with tracing when requested) and reuse the result for
    // every emit kind and the run.
    let tracing = args.trace || args.trace_json.is_some() || args.trace_chrome.is_some();
    if tracing {
        ipra_obs::enable();
    }
    let compiled = ipra_core::ipra::compile_module_with_profile(
        &module,
        &config.target,
        &config.opts,
        loaded_profile.as_deref(),
    );
    let raw_trace = if tracing {
        Some(ipra_obs::disable())
    } else {
        None
    };
    if compiled.cache.enabled {
        eprintln!(
            "[cache] hits: {}  misses: {}  cutoffs: {}",
            compiled.cache.hits, compiled.cache.misses, compiled.cache.cutoffs
        );
    }

    if args.verify_mc {
        let violations =
            ipra_verify::verify_module(&compiled.mmodule, &config.target.regs, &compiled.summaries);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("verify-mc: {v}");
            }
            return Err(format!(
                "verify-mc: {} register-contract violation(s)",
                violations.len()
            ));
        }
    }

    match args.emit.as_deref() {
        Some("ir") => println!("{module}"),
        Some("asm") => {
            for (_, f) in compiled.mmodule.funcs.iter() {
                println!("{}", f.display_in(&config.target.regs, &compiled.mmodule));
            }
        }
        Some("summary") => {
            for (report, summary) in compiled.reports.iter().zip(&compiled.summaries) {
                println!(
                    "{:<16} open={:<5} used={:?} saved={:?} clobbers={:?} sw-iters={} \
                     vregs={} mem={} split={}",
                    report.name,
                    !report.open_reasons.is_empty() || report.forced_open,
                    report.used,
                    report.locally_saved,
                    summary.clobbers,
                    report.shrink_iterations,
                    report.candidate_vregs,
                    report.memory_vregs,
                    report.split_vregs,
                );
            }
            println!(
                "globals promoted: {} ({} accesses rewritten)",
                compiled.promotion.promoted, compiled.promotion.accesses_rewritten
            );
        }
        Some(other) => return Err(format!("unknown --emit kind `{other}`")),
        None => {}
    }

    let mut stats = None;
    // `--profile-out` implies a run: the profile is the run's block counts.
    if args.run || args.profile_out.is_some() || args.emit.is_none() {
        let (run_stats, output) = if let Some(path) = &args.profile_out {
            let sim_opts = ipra_sim::SimOptions::for_target(&config.target.regs)
                .check_preservation(compiled.clobber_masks.clone())
                .with_block_profile();
            let r = ipra_sim::run(&compiled.mmodule, &config.target.regs, &sim_opts)
                .map_err(|t| format!("runtime trap: {t}"))?;
            let profile = r.block_profile.expect("profile requested");
            std::fs::write(path, profile_to_json(&module, &profile).render_pretty())
                .map_err(|e| format!("{path}: {e}"))?;
            (r.stats, r.output)
        } else {
            let m = run_compiled(&compiled, &config).map_err(|t| format!("runtime trap: {t}"))?;
            (m.stats, m.output)
        };
        for v in &output {
            println!("{v}");
        }
        eprintln!(
            "[{}] cycles: {}  insts: {}  calls: {}  loads: {}  stores: {}  scalar l/s: {}  cycles/call: {:.1}",
            config.name,
            run_stats.cycles,
            run_stats.insts,
            run_stats.calls,
            run_stats.total_loads(),
            run_stats.total_stores(),
            run_stats.scalar_mem(),
            run_stats.cycles_per_call()
        );
        stats = Some(run_stats);
    }

    if let Some(raw) = raw_trace {
        // Chrome export works on the raw spans (it needs lanes and real
        // timestamps), the structured trace on the digested view.
        if let Some(path) = &args.trace_chrome {
            let doc = ipra_obs::chrome::export(&raw, &config.name);
            std::fs::write(path, doc.render_pretty()).map_err(|e| format!("{path}: {e}"))?;
        }
        let trace = CompileTrace::build(&config.name, &raw, &compiled, stats.as_ref());
        if args.trace {
            eprint!("{}", trace.render_text());
        }
        if let Some(path) = &args.trace_json {
            std::fs::write(path, trace.to_json().render_pretty())
                .map_err(|e| format!("{path}: {e}"))?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        parse_args_from(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn no_shrink_wrap_survives_later_opt_level() {
        // The footgun: `-O3` replaces the whole option set, which used to
        // silently re-enable shrink-wrapping requested off earlier.
        let a = parse(&["--no-shrink-wrap", "-O3", "x.mini"]);
        assert!(!a.opts.shrink_wrap);
        let b = parse(&["--no-shrink-wrap", "-O2", "x.mini"]);
        assert!(!b.opts.shrink_wrap);
        let c = parse(&["-O3", "--no-shrink-wrap", "x.mini"]);
        assert!(!c.opts.shrink_wrap);
    }

    #[test]
    fn shrink_wrap_on_by_default_at_o3() {
        let a = parse(&["-O3", "x.mini"]);
        assert!(a.opts.shrink_wrap);
    }

    #[test]
    fn jobs_flag_parses_and_survives_opt_level() {
        let a = parse(&["--jobs", "4", "-O3", "x.mini"]);
        assert_eq!(a.opts.jobs, 4);
        let b = parse(&["-O2", "--jobs", "1", "x.mini"]);
        assert_eq!(b.opts.jobs, 1);
        let c = parse(&["x.mini"]);
        assert_eq!(c.opts.jobs, 0, "default: auto");
    }

    #[test]
    fn cache_dir_flag_survives_opt_level() {
        let a = parse(&["--cache-dir", "/tmp/c", "-O3", "x.mini"]);
        assert_eq!(a.opts.cache_dir.as_deref(), Some("/tmp/c".as_ref()));
        let b = parse(&["-O2", "--cache-dir", "/tmp/c", "x.mini"]);
        assert_eq!(b.opts.cache_dir.as_deref(), Some("/tmp/c".as_ref()));
        let c = parse(&["x.mini"]);
        assert_eq!(c.opts.cache_dir, None, "default: no cache");
    }

    #[test]
    fn profile_flags_parse() {
        let a = parse(&["--profile-out", "p.json", "x.mini"]);
        assert_eq!(a.profile_out.as_deref(), Some("p.json"));
        assert!(a.profile_in.is_none());
        let b = parse(&["--profile-in", "p.json", "--run", "x.mini"]);
        assert_eq!(b.profile_in.as_deref(), Some("p.json"));
        assert!(b.run);
    }

    #[test]
    fn inline_flags_parse_and_survive_opt_level() {
        let a = parse(&["--inline", "-O3", "x.mini"]);
        assert!(a.opts.inline);
        assert_eq!(a.opts.inline_budget, ipra_core::DEFAULT_INLINE_BUDGET);
        let b = parse(&["-O2", "--inline", "--inline-budget", "96", "x.mini"]);
        assert!(b.opts.inline);
        assert_eq!(b.opts.inline_budget, 96);
        // Budget order doesn't matter relative to the opt level either.
        let c = parse(&["--inline-budget", "7", "--inline", "-O3", "x.mini"]);
        assert_eq!(c.opts.inline_budget, 7);
        let d = parse(&["x.mini"]);
        assert!(!d.opts.inline, "default: inliner off");
        assert!(parse_args_from(
            ["--inline-budget", "many", "x.mini"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
    }

    #[test]
    fn verify_mc_flags_parse() {
        let a = parse(&["--verify-mc", "x.mini"]);
        assert!(a.verify_mc);
        let b = parse(&["--no-verify-mc", "x.mini"]);
        assert!(!b.verify_mc);
        // Last flag wins, in either order.
        let c = parse(&["--verify-mc", "--no-verify-mc", "x.mini"]);
        assert!(!c.verify_mc);
        let d = parse(&["--no-verify-mc", "--verify-mc", "x.mini"]);
        assert!(d.verify_mc);
        // Default tracks the build profile.
        let e = parse(&["x.mini"]);
        assert_eq!(e.verify_mc, cfg!(debug_assertions));
    }

    #[test]
    fn remote_flags_parse() {
        let a = parse(&["--remote", "/tmp/ccd.sock", "x.mini"]);
        assert_eq!(a.remote.as_deref(), Some("/tmp/ccd.sock"));
        assert!(!a.ping && !a.shutdown);
        // Management commands need no input file.
        let b = parse(&["--remote", "/tmp/ccd.sock", "--shutdown"]);
        assert!(b.shutdown && b.input.is_none());
        let c = parse(&["--remote", "/tmp/ccd.sock", "--ping"]);
        assert!(c.ping);
        let d = parse(&["--remote", "/tmp/ccd.sock", "--emit", "metrics"]);
        assert_eq!(d.emit.as_deref(), Some("metrics"));
        // But a remote compile still does, and --ping alone is invalid.
        assert!(
            parse_args_from(["--remote", "/tmp/ccd.sock"].iter().map(|s| s.to_string())).is_err()
        );
        assert!(parse_args_from(["--ping"].iter().map(|s| s.to_string())).is_err());
    }

    #[test]
    fn limit_is_remembered_for_forwarding() {
        let a = parse(&["--limit", "7,0", "x.mini"]);
        assert_eq!(a.limit, Some((7, 0)));
        assert_eq!(parse(&["x.mini"]).limit, None);
    }

    #[test]
    fn target_flag_parses_names_and_conv_triples() {
        let a = parse(&["--target", "embedded8", "x.mini"]);
        assert_eq!(a.target_name.as_deref(), Some("embedded8"));
        assert_eq!(a.target.regs.allocatable().len(), 8);
        let b = parse(&["--target", "conv:8,6,2", "x.mini"]);
        assert_eq!(
            b.target.regs.fingerprint(),
            a.target.regs.fingerprint(),
            "conv:8,6,2 is embedded8's spec"
        );
        // The target survives a later opt-level flag.
        let c = parse(&["--target", "searched", "-O2", "x.mini"]);
        assert_eq!(
            c.target.regs.fingerprint(),
            ipra_machine::Target::by_name("searched")
                .unwrap()
                .regs
                .fingerprint()
        );
        assert_eq!(parse(&["x.mini"]).target_name, None);
    }

    #[test]
    fn target_flag_rejects_bad_values_and_limit_combos() {
        let err = |words: &[&str]| {
            parse_args_from(words.iter().map(|s| s.to_string()))
                .err()
                .unwrap()
        };
        assert!(err(&["--target", "nonesuch", "x.mini"]).contains("unknown target"));
        assert!(err(&["--target", "conv:4,9,1", "x.mini"]).contains("caller"));
        assert!(err(&["--target", "embedded8", "--limit", "7,0", "x.mini"])
            .contains("mutually exclusive"));
        assert!(
            err(&["--limit", "7,0", "--target", "embedded8", "x.mini"])
                .contains("mutually exclusive"),
            "order must not matter"
        );
        assert!(err(&["--limit", "12,0", "x.mini"]).contains("at most"));
    }

    #[test]
    fn trace_flags_parse() {
        let a = parse(&["--trace", "--trace-json", "t.json", "--run", "x.mini"]);
        assert!(a.trace && a.run);
        assert_eq!(a.trace_json.as_deref(), Some("t.json"));
        let b = parse(&["x.mini"]);
        assert!(!b.trace && b.trace_json.is_none() && b.trace_chrome.is_none());
        let c = parse(&["--trace-chrome", "c.json", "x.mini"]);
        assert_eq!(c.trace_chrome.as_deref(), Some("c.json"));
    }
}
