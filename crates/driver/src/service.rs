//! The compile service behind `mini-ccd` — a long-lived, concurrent,
//! cache-hot compilation daemon.
//!
//! One [`Service`] owns a shared [`Pipeline`] (analysis memo, scratch
//! pool, decoded-cache image, prepared-module memo) and serves any number
//! of client sessions concurrently, each on its own thread via
//! [`Service::serve_session`]. Sessions speak the length-prefixed JSON
//! protocol of [`ipra_obs::frame`]: every request is one frame, every
//! response is one frame, and a session processes its own requests in
//! order while other sessions proceed in parallel.
//!
//! # Admission control
//!
//! Compiles are the expensive part, so they pass through an admission
//! gate: at most `max_active` compiles run at once, at most `max_queue`
//! wait behind them, and anything beyond that is answered immediately
//! with a structured `busy` response instead of being buffered without
//! bound. Cheap commands (`ping`, `metrics`, `shutdown`) bypass the gate.
//! Each admitted compile's wave-scheduler job count is clamped to
//! `jobs_cap` so concurrent sessions cannot multiply threads.
//!
//! # Determinism
//!
//! A daemon compile must be byte-identical to a fresh `mini-cc` compile
//! of the same source under the same options — cold or warm, whatever
//! other sessions are doing. The shared pipeline guarantees this by
//! construction (its memos only short-circuit recomputation of values
//! that are pure functions of their keys) and the differential oracle's
//! service check enforces it on every fuzz seed.
//!
//! # Wire protocol
//!
//! Requests are JSON objects with a `cmd` field:
//!
//! ```json
//! {"cmd": "compile", "id": 1,
//!  "source": "fn main() { print(1); }",
//!  "options": {"opt": "O3", "shrink_wrap": true, "jobs": 0,
//!              "limit": [7, 0], "cache_dir": "/tmp/c",
//!              "inline": true, "inline_budget": 48},
//!  "run": true, "trace": false}
//! ```
//!
//! `source` may be replaced by `path` (read server-side) or `workload`
//! (a bundled benchmark name). Every `options` field is optional and
//! defaults to the `mini-cc` defaults (`-O3`, shrink-wrap on, auto
//! jobs, full register file, no cache, inliner off). Responses carry `id` back,
//! `status` (`ok` | `error` | `busy`), and on success the rendered
//! `asm`, a `warm` flag (the whole compile was answered from the
//! analysis memo), `cache`/`analysis` statistics, plus `output` and
//! `stats` when `run` was set and a `trace` document when `trace` was.
//! The other commands are `{"cmd": "ping"}`, `{"cmd": "metrics"}` and
//! `{"cmd": "shutdown"}`.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use ipra_core::config::{AllocMode, AllocOptions};
use ipra_core::Pipeline;
use ipra_machine::Target;
use ipra_obs::frame::{read_frame, read_frame_with_limit, write_frame, FrameError, MAX_FRAME_LEN};
use ipra_obs::json::Json;
use ipra_obs::metrics::Metrics;
use ipra_sim::Stats;

use crate::{run_compiled, CompileTrace, Config};

/// Tuning knobs of one [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Compiles allowed to run concurrently.
    pub max_active: usize,
    /// Compiles allowed to wait for a slot before `busy` is returned.
    pub max_queue: usize,
    /// Upper bound on any single compile's wave-scheduler jobs.
    pub jobs_cap: usize,
    /// Per-frame payload cap enforced before buffering.
    pub max_frame_len: u32,
    /// FIFO bound on the pipeline's prepared-module memo.
    pub prepared_cap: usize,
    /// FIFO bound on the pipeline's decoded-cache-entry memo.
    pub entries_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_active: 4,
            max_queue: 64,
            jobs_cap: 4,
            max_frame_len: MAX_FRAME_LEN,
            prepared_cap: 256,
            entries_cap: 4096,
        }
    }
}

/// Counting gate in front of the compile path: `active` slots, a bounded
/// queue behind them, and an immediate `false` (→ `busy` response) once
/// the queue is full. Fairness comes from the condvar's wake order being
/// good enough here — a woken waiter re-checks and either takes the slot
/// or waits again.
#[derive(Debug)]
struct Admission {
    /// `(active, queued)`.
    state: Mutex<(usize, usize)>,
    cv: Condvar,
    max_active: usize,
    max_queue: usize,
}

impl Admission {
    fn new(max_active: usize, max_queue: usize) -> Admission {
        Admission {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            max_active: max_active.max(1),
            max_queue,
        }
    }

    /// Blocks until a slot is free, or returns `false` when the queue is
    /// already full (the caller answers `busy`).
    fn acquire(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.0 < self.max_active {
            st.0 += 1;
            return true;
        }
        if st.1 >= self.max_queue {
            return false;
        }
        st.1 += 1;
        while st.0 >= self.max_active {
            st = self.cv.wait(st).unwrap();
        }
        st.1 -= 1;
        st.0 += 1;
        true
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.0 -= 1;
        self.cv.notify_one();
    }

    /// `(active, queued)` right now.
    fn depth(&self) -> (usize, usize) {
        *self.state.lock().unwrap()
    }
}

/// The compile daemon's state: shared pipeline, admission gate, metrics
/// registry and shutdown flag. `Service` is `Sync`; the daemon binary
/// wraps one in an `Arc` and hands a clone to each session thread.
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    pipeline: Pipeline,
    admission: Admission,
    metrics: Mutex<Metrics>,
    shutdown: AtomicBool,
}

fn as_bool(j: &Json) -> Option<bool> {
    match j {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn error_response(id: &Json, msg: &str) -> Json {
    Json::obj(vec![
        ("id", id.clone()),
        ("status", Json::Str("error".into())),
        ("error", Json::Str(msg.to_string())),
    ])
}

fn stats_json(s: &Stats) -> Json {
    Json::obj(vec![
        ("cycles", Json::Int(s.cycles as i64)),
        ("insts", Json::Int(s.insts as i64)),
        ("calls", Json::Int(s.calls as i64)),
        ("loads", Json::Int(s.total_loads() as i64)),
        ("stores", Json::Int(s.total_stores() as i64)),
        ("scalar_mem", Json::Int(s.scalar_mem() as i64)),
    ])
}

impl Service {
    /// A service with the given knobs and a memo-bounded pipeline.
    pub fn new(config: ServiceConfig) -> Service {
        let admission = Admission::new(config.max_active, config.max_queue);
        let pipeline = Pipeline::with_memo_caps(config.prepared_cap, config.entries_cap);
        Service {
            config,
            pipeline,
            admission,
            metrics: Mutex::new(Metrics::default()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// A service with [`ServiceConfig::default`] knobs.
    pub fn with_defaults() -> Service {
        Service::new(ServiceConfig::default())
    }

    /// The shared pipeline (memo sizes, analysis stats).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// True once a `shutdown` command was accepted (or
    /// [`Service::request_shutdown`] was called). The accept loop polls
    /// this; in-flight sessions finish normally.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Marks the service as shutting down.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn metric_counter(&self, name: &'static str, labels: &[(&str, &str)], v: u64) {
        self.metrics.lock().unwrap().add_counter(name, labels, v);
    }

    fn refresh_gauges(&self) {
        let (active, queued) = self.admission.depth();
        let (prepared, entries) = self.pipeline.memo_sizes();
        let mut m = self.metrics.lock().unwrap();
        m.set_gauge("service.active", &[], active as i64);
        m.set_gauge("service.queue_depth", &[], queued as i64);
        m.set_gauge("service.memo_prepared", &[], prepared as i64);
        m.set_gauge("service.memo_entries", &[], entries as i64);
    }

    /// A point-in-time copy of the daemon metrics, gauges refreshed.
    pub fn metrics_snapshot(&self) -> Metrics {
        self.refresh_gauges();
        self.metrics.lock().unwrap().clone()
    }

    /// Serves one client session to completion: reads request frames,
    /// writes response frames, returns the number of requests served.
    ///
    /// A clean close by the peer ends the session with `Ok`. Protocol
    /// violations that leave the stream framed (unparseable payload) are
    /// answered with a structured `error` response and the session
    /// continues; an oversized frame is answered and then the session
    /// closes (its payload was never read, so the stream cannot be
    /// resynchronized).
    ///
    /// # Errors
    ///
    /// A peer vanishing mid-frame or a transport error tears the session
    /// down with the underlying [`FrameError`]; the daemon logs it and
    /// other sessions are unaffected. This function never panics on
    /// malformed input.
    pub fn serve_session(&self, mut r: impl Read, mut w: impl Write) -> Result<u64, FrameError> {
        self.metric_counter("service.sessions", &[], 1);
        let mut served = 0u64;
        loop {
            let req = match read_frame_with_limit(&mut r, self.config.max_frame_len) {
                Ok(v) => v,
                Err(FrameError::Closed) => return Ok(served),
                Err(e @ FrameError::TooLarge { .. }) => {
                    self.metric_counter("service.protocol_errors", &[("kind", "too_large")], 1);
                    let _ = write_frame(&mut w, &error_response(&Json::Null, &e.to_string()));
                    return Ok(served);
                }
                Err(FrameError::Parse(msg)) => {
                    self.metric_counter("service.protocol_errors", &[("kind", "parse")], 1);
                    write_frame(
                        &mut w,
                        &error_response(&Json::Null, &format!("bad request: {msg}")),
                    )
                    .map_err(FrameError::Io)?;
                    continue;
                }
                Err(e) => {
                    let kind = match &e {
                        FrameError::Truncated => "truncated",
                        _ => "transport",
                    };
                    self.metric_counter("service.protocol_errors", &[("kind", kind)], 1);
                    return Err(e);
                }
            };
            let (resp, end_session) = self.dispatch(&req);
            served += 1;
            write_frame(&mut w, &resp).map_err(FrameError::Io)?;
            if end_session {
                return Ok(served);
            }
        }
    }

    /// Handles one request document; returns the response and whether the
    /// session should end (after a `shutdown`).
    pub fn dispatch(&self, req: &Json) -> (Json, bool) {
        let id = req.get("id").cloned().unwrap_or(Json::Null);
        let cmd = req
            .get("cmd")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let start = Instant::now();
        let (resp, end) = match cmd.as_str() {
            "ping" => (
                Json::obj(vec![
                    ("id", id.clone()),
                    ("status", Json::Str("ok".into())),
                    ("pong", Json::Bool(true)),
                ]),
                false,
            ),
            "metrics" => (
                Json::obj(vec![
                    ("id", id.clone()),
                    ("status", Json::Str("ok".into())),
                    ("metrics", self.metrics_snapshot().to_json()),
                ]),
                false,
            ),
            "shutdown" => {
                self.request_shutdown();
                (
                    Json::obj(vec![
                        ("id", id.clone()),
                        ("status", Json::Str("ok".into())),
                        ("shutting_down", Json::Bool(true)),
                    ]),
                    true,
                )
            }
            "compile" => (self.handle_compile(req, &id), false),
            other => (
                error_response(&id, &format!("unknown cmd `{other}`")),
                false,
            ),
        };
        let status = resp.get("status").and_then(Json::as_str).unwrap_or("error");
        let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        {
            let mut m = self.metrics.lock().unwrap();
            m.add_counter("service.requests", &[("cmd", &cmd), ("status", status)], 1);
            m.observe("service.request_micros", &[("cmd", &cmd)], micros);
        }
        (resp, end)
    }

    fn handle_compile(&self, req: &Json, id: &Json) -> Json {
        let source = if let Some(s) = req.get("source").and_then(Json::as_str) {
            s.to_string()
        } else if let Some(p) = req.get("path").and_then(Json::as_str) {
            match std::fs::read_to_string(p) {
                Ok(s) => s,
                Err(e) => return error_response(id, &format!("{p}: {e}")),
            }
        } else if let Some(n) = req.get("workload").and_then(Json::as_str) {
            match ipra_workloads::by_name(n) {
                Some(w) => w.source.to_string(),
                None => return error_response(id, &format!("unknown workload `{n}`")),
            }
        } else {
            return error_response(id, "compile needs `source`, `path` or `workload`");
        };
        let (config, run, trace) = match self.request_config(req) {
            Ok(x) => x,
            Err(e) => return error_response(id, &e),
        };

        if !self.admission.acquire() {
            self.metric_counter("service.busy_rejections", &[], 1);
            return Json::obj(vec![
                ("id", id.clone()),
                ("status", Json::Str("busy".into())),
                (
                    "error",
                    Json::Str(format!(
                        "server at capacity ({} active, {} queued); retry later",
                        self.config.max_active, self.config.max_queue
                    )),
                ),
            ]);
        }
        self.refresh_gauges();
        let resp = self.compile_admitted(&source, &config, run, trace, id);
        self.admission.release();
        self.refresh_gauges();
        resp
    }

    /// Rebuilds the `mini-cc` configuration surface from the request's
    /// `options` object, with the daemon's jobs clamp applied.
    fn request_config(&self, req: &Json) -> Result<(Config, bool, bool), String> {
        let run = req.get("run").and_then(as_bool).unwrap_or(false);
        let trace = req.get("trace").and_then(as_bool).unwrap_or(false);
        let o = req.get("options");
        let field = |k: &str| o.and_then(|o| o.get(k));

        let level = field("opt").and_then(Json::as_str).unwrap_or("O3");
        let mut opts = match level {
            "O0" => AllocOptions::no_alloc(),
            "O2" => AllocOptions::o2_shrink_wrap(),
            "O3" => AllocOptions::o3(),
            other => return Err(format!("unknown opt level `{other}`")),
        };
        if let Some(b) = field("shrink_wrap").and_then(as_bool) {
            opts.shrink_wrap = b;
        }
        let requested = field("jobs").and_then(Json::as_i64).unwrap_or(0);
        if requested < 0 {
            return Err("jobs must be non-negative".into());
        }
        // Per-request clamp: auto (0) resolves to the cap, explicit
        // requests are honored up to it. Output is jobs-independent, so
        // the clamp is invisible to clients.
        opts.jobs = if requested == 0 {
            self.config.jobs_cap
        } else {
            (requested as usize).min(self.config.jobs_cap)
        };
        if let Some(d) = field("cache_dir").and_then(Json::as_str) {
            opts.cache_dir = Some(std::path::PathBuf::from(d));
        }
        if let Some(b) = field("inline").and_then(as_bool) {
            opts.inline = b;
        }
        match field("inline_budget") {
            None | Some(Json::Null) => {}
            Some(v) => match v.as_i64() {
                // Bounds-checked like `limit`: a malformed request must
                // never panic a session thread or smuggle in a budget the
                // CLI's u32 flag could not express.
                Some(b) if (0..=i64::from(u32::MAX)).contains(&b) => {
                    opts.inline_budget = b as u32;
                }
                _ => return Err("inline_budget must be a non-negative integer".into()),
            },
        }
        let named = match field("target") {
            None | Some(Json::Null) => None,
            Some(Json::Str(name)) => Some(Target::parse(name)?),
            Some(_) => return Err("target must be a string".into()),
        };
        let target = match field("limit") {
            None | Some(Json::Null) => named.unwrap_or_else(Target::mips_like),
            Some(_) if named.is_some() => {
                return Err("limit and target are mutually exclusive".into())
            }
            Some(Json::Arr(a)) if a.len() == 2 => {
                let nc = a[0].as_i64().filter(|v| *v >= 0);
                let ne = a[1].as_i64().filter(|v| *v >= 0);
                match (nc, ne) {
                    // Bounds-checked here rather than panicking inside
                    // `with_class_limits`: a malformed request must never
                    // take a session thread down.
                    (Some(nc), Some(ne)) if nc <= 11 && ne <= 9 => {
                        Target::with_class_limits(nc as usize, ne as usize)
                    }
                    (Some(_), Some(_)) => {
                        return Err("limit is at most [11, 9] for the mips family".into())
                    }
                    _ => return Err("limit must be [nc, ne] with non-negative counts".into()),
                }
            }
            Some(_) => return Err("limit must be [nc, ne]".into()),
        };
        let name = match opts.mode {
            AllocMode::NoAlloc => "-O0",
            AllocMode::Intra => "-O2",
            AllocMode::Inter => "-O3",
        };
        Ok((
            Config {
                name: name.into(),
                target,
                opts,
            },
            run,
            trace,
        ))
    }

    fn compile_admitted(
        &self,
        source: &str,
        config: &Config,
        run: bool,
        trace: bool,
        id: &Json,
    ) -> Json {
        let module = match ipra_frontend::compile(source) {
            Ok(m) => m,
            Err(e) => return error_response(id, &format!("compile error: {e}")),
        };
        if trace {
            ipra_obs::enable();
        }
        let compiled = self.pipeline.compile(&module, &config.target, &config.opts);
        let raw = if trace {
            Some(ipra_obs::disable())
        } else {
            None
        };

        let mut asm = String::new();
        for (_, f) in compiled.mmodule.funcs.iter() {
            asm.push_str(
                &f.display_in(&config.target.regs, &compiled.mmodule)
                    .to_string(),
            );
            asm.push('\n');
        }
        // "Warm" means the whole compile was answered from the analysis
        // memo: nothing had to be recomputed from source.
        let warm = compiled.analysis.misses == 0 && compiled.analysis.hits > 0;
        if warm {
            self.metric_counter("service.warm_hits", &[], 1);
        }

        let mut fields = vec![
            ("id", id.clone()),
            ("status", Json::Str("ok".into())),
            ("config", Json::Str(config.name.clone())),
            ("asm", Json::Str(asm)),
            ("warm", Json::Bool(warm)),
            (
                "cache",
                Json::obj(vec![
                    ("enabled", Json::Bool(compiled.cache.enabled)),
                    ("hits", Json::Int(compiled.cache.hits as i64)),
                    ("misses", Json::Int(compiled.cache.misses as i64)),
                    ("cutoffs", Json::Int(compiled.cache.cutoffs as i64)),
                ]),
            ),
            (
                "analysis",
                Json::obj(vec![
                    ("hits", Json::Int(compiled.analysis.hits as i64)),
                    ("misses", Json::Int(compiled.analysis.misses as i64)),
                ]),
            ),
        ];

        let mut stats = None;
        if run {
            match run_compiled(&compiled, config) {
                Ok(m) => {
                    fields.push((
                        "output",
                        Json::Arr(m.output.iter().map(|v| Json::Int(*v)).collect()),
                    ));
                    fields.push(("stats", stats_json(&m.stats)));
                    stats = Some(m.stats);
                }
                Err(t) => return error_response(id, &format!("runtime trap: {t}")),
            }
        }
        if let Some(raw) = raw {
            let t = CompileTrace::build(&config.name, &raw, &compiled, stats.as_ref());
            fields.push(("trace", t.to_json()));
        }
        Json::obj(fields)
    }
}

/// Where a [`CompileRequest`] takes its program text from.
#[derive(Clone, Debug)]
pub enum RequestSource {
    /// Inline Mini source.
    Source(String),
    /// A path the *server* reads.
    Path(String),
    /// A bundled benchmark name.
    Workload(String),
}

/// Client-side builder for `compile` requests, mirroring the `mini-cc`
/// option surface field for field so a remote compile is specified
/// exactly like a local one.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    /// Echoed back in the response.
    pub id: i64,
    /// Program text source.
    pub source: RequestSource,
    /// `"O0"` | `"O2"` | `"O3"`.
    pub opt: String,
    /// Override shrink-wrapping (default: the level's default).
    pub shrink_wrap: Option<bool>,
    /// Wave-scheduler jobs (0 = server default; clamped server-side).
    pub jobs: usize,
    /// Register class limits, as in `--limit NC,NE`.
    pub limit: Option<(usize, usize)>,
    /// Named target or `conv:POOL,CALLER,ARGS`, as in `--target NAME`.
    /// Mutually exclusive with `limit`.
    pub target: Option<String>,
    /// Server-side incremental-cache directory.
    pub cache_dir: Option<String>,
    /// Override the profile-guided inliner (default: the level's
    /// default, which is off), as in `--inline`.
    pub inline: Option<bool>,
    /// Inliner growth budget, as in `--inline-budget N`.
    pub inline_budget: Option<u32>,
    /// Simulate after compiling.
    pub run: bool,
    /// Return a `CompileTrace` document.
    pub trace: bool,
}

impl CompileRequest {
    /// A request with `mini-cc` defaults (`-O3`, no run, no trace).
    pub fn new(id: i64, source: RequestSource) -> CompileRequest {
        CompileRequest {
            id,
            source,
            opt: "O3".into(),
            shrink_wrap: None,
            jobs: 0,
            limit: None,
            target: None,
            cache_dir: None,
            inline: None,
            inline_budget: None,
            run: false,
            trace: false,
        }
    }

    /// The wire form [`Service::dispatch`] consumes.
    pub fn to_json(&self) -> Json {
        let (src_key, src_val) = match &self.source {
            RequestSource::Source(s) => ("source", s.clone()),
            RequestSource::Path(p) => ("path", p.clone()),
            RequestSource::Workload(w) => ("workload", w.clone()),
        };
        let mut options = vec![
            ("opt", Json::Str(self.opt.clone())),
            ("jobs", Json::Int(self.jobs as i64)),
        ];
        if let Some(b) = self.shrink_wrap {
            options.push(("shrink_wrap", Json::Bool(b)));
        }
        if let Some((nc, ne)) = self.limit {
            options.push((
                "limit",
                Json::Arr(vec![Json::Int(nc as i64), Json::Int(ne as i64)]),
            ));
        }
        if let Some(t) = &self.target {
            options.push(("target", Json::Str(t.clone())));
        }
        if let Some(d) = &self.cache_dir {
            options.push(("cache_dir", Json::Str(d.clone())));
        }
        if let Some(b) = self.inline {
            options.push(("inline", Json::Bool(b)));
        }
        if let Some(b) = self.inline_budget {
            options.push(("inline_budget", Json::Int(i64::from(b))));
        }
        Json::obj(vec![
            ("cmd", Json::Str("compile".into())),
            ("id", Json::Int(self.id)),
            (src_key, Json::Str(src_val)),
            ("options", Json::obj(options)),
            ("run", Json::Bool(self.run)),
            ("trace", Json::Bool(self.trace)),
        ])
    }
}

/// Client side of one exchange: writes `req` as a frame and reads the
/// response frame.
///
/// # Errors
///
/// Propagates framing and transport errors; [`FrameError::Closed`] means
/// the daemon hung up before answering.
pub fn roundtrip(stream: &mut (impl Read + Write), req: &Json) -> Result<Json, FrameError> {
    write_frame(stream, req).map_err(FrameError::Io)?;
    read_frame(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn serve(service: &Service, requests: &[Json]) -> Vec<Json> {
        let mut input = Vec::new();
        for r in requests {
            write_frame(&mut input, r).unwrap();
        }
        let mut output = Vec::new();
        service
            .serve_session(Cursor::new(input), &mut output)
            .unwrap();
        let mut c = Cursor::new(output);
        let mut responses = Vec::new();
        loop {
            match read_frame(&mut c) {
                Ok(v) => responses.push(v),
                Err(FrameError::Closed) => return responses,
                Err(e) => panic!("bad response stream: {e}"),
            }
        }
    }

    const DEMO: &str = "fn sq(x: int) -> int { return x * x; } fn main() { print(sq(9)); }";

    #[test]
    fn compile_request_round_trips_and_warms_up() {
        let service = Service::with_defaults();
        let mut req = CompileRequest::new(1, RequestSource::Source(DEMO.into()));
        req.run = true;
        let mut again = req.clone();
        again.id = 2;
        let responses = serve(&service, &[req.to_json(), again.to_json()]);
        assert_eq!(responses.len(), 2);
        let (cold, warmr) = (&responses[0], &responses[1]);
        assert_eq!(cold.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(cold.get("id").and_then(Json::as_i64), Some(1));
        assert_eq!(cold.get("warm"), Some(&Json::Bool(false)));
        assert_eq!(
            cold.get("output").and_then(Json::as_arr),
            Some(&[Json::Int(81)][..])
        );
        assert_eq!(warmr.get("warm"), Some(&Json::Bool(true)));
        // Bit-identical asm, cold and warm, and vs a one-shot compile.
        assert_eq!(cold.get("asm"), warmr.get("asm"));
        let module = ipra_frontend::compile(DEMO).unwrap();
        let config = Config::o3();
        let oneshot = ipra_core::compile_module(&module, &config.target, &config.opts);
        let mut want = String::new();
        for (_, f) in oneshot.mmodule.funcs.iter() {
            want.push_str(
                &f.display_in(&config.target.regs, &oneshot.mmodule)
                    .to_string(),
            );
            want.push('\n');
        }
        assert_eq!(cold.get("asm").and_then(Json::as_str), Some(want.as_str()));
    }

    #[test]
    fn ping_metrics_and_unknown_cmd() {
        let service = Service::with_defaults();
        let responses = serve(
            &service,
            &[
                Json::obj(vec![
                    ("cmd", Json::Str("ping".into())),
                    ("id", Json::Int(9)),
                ]),
                Json::obj(vec![("cmd", Json::Str("metrics".into()))]),
                Json::obj(vec![("cmd", Json::Str("frobnicate".into()))]),
            ],
        );
        assert_eq!(responses[0].get("pong"), Some(&Json::Bool(true)));
        assert_eq!(responses[0].get("id").and_then(Json::as_i64), Some(9));
        let m = responses[1].get("metrics").expect("metrics document");
        assert!(m.get("counters").and_then(Json::as_arr).is_some());
        assert_eq!(
            responses[2].get("status").and_then(Json::as_str),
            Some("error")
        );
    }

    #[test]
    fn shutdown_ends_the_session_and_sets_the_flag() {
        let service = Service::with_defaults();
        let responses = serve(
            &service,
            &[
                Json::obj(vec![("cmd", Json::Str("shutdown".into()))]),
                // Never reached: the session ends after the response.
                Json::obj(vec![("cmd", Json::Str("ping".into()))]),
            ],
        );
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].get("shutting_down"), Some(&Json::Bool(true)));
        assert!(service.shutdown_requested());
    }

    #[test]
    fn frontend_and_option_errors_are_structured() {
        let service = Service::with_defaults();
        let mut bad_src = CompileRequest::new(1, RequestSource::Source("fn fn fn".into()));
        bad_src.run = true;
        let mut bad_opt = CompileRequest::new(2, RequestSource::Source(DEMO.into()));
        bad_opt.opt = "O7".into();
        let no_input = Json::obj(vec![
            ("cmd", Json::Str("compile".into())),
            ("id", Json::Int(3)),
        ]);
        let bad_workload = {
            let r = CompileRequest::new(4, RequestSource::Workload("no-such".into()));
            r.to_json()
        };
        let responses = serve(
            &service,
            &[bad_src.to_json(), bad_opt.to_json(), no_input, bad_workload],
        );
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(
                r.get("status").and_then(Json::as_str),
                Some("error"),
                "request {i}: {r:?}"
            );
            assert_eq!(r.get("id").and_then(Json::as_i64), Some(i as i64 + 1));
        }
    }

    #[test]
    fn options_shape_matches_local_configs() {
        // --limit 7,0 at O3 is Config::d(); shrink_wrap=false at O3 is B.
        let service = Service::with_defaults();
        let mut req = CompileRequest::new(1, RequestSource::Source(DEMO.into()));
        req.limit = Some((7, 0));
        let resp = &serve(&service, &[req.to_json()])[0];
        let module = ipra_frontend::compile(DEMO).unwrap();
        let d = Config::d();
        let local = ipra_core::compile_module(&module, &d.target, &d.opts);
        let mut want = String::new();
        for (_, f) in local.mmodule.funcs.iter() {
            want.push_str(&f.display_in(&d.target.regs, &local.mmodule).to_string());
            want.push('\n');
        }
        assert_eq!(resp.get("asm").and_then(Json::as_str), Some(want.as_str()));
    }

    #[test]
    fn inline_options_match_local_config_and_are_bounds_checked() {
        // inline=true at O3 must match a local Config::inline_c() compile.
        let service = Service::with_defaults();
        let mut req = CompileRequest::new(1, RequestSource::Source(DEMO.into()));
        req.inline = Some(true);
        let resp = &serve(&service, &[req.to_json()])[0];
        let module = ipra_frontend::compile(DEMO).unwrap();
        let ic = Config::inline_c();
        let local = ipra_core::compile_module(&module, &ic.target, &ic.opts);
        let mut want = String::new();
        for (_, f) in local.mmodule.funcs.iter() {
            want.push_str(&f.display_in(&ic.target.regs, &local.mmodule).to_string());
            want.push('\n');
        }
        assert_eq!(resp.get("asm").and_then(Json::as_str), Some(want.as_str()));

        // Malformed budgets are structured errors, not panics.
        for bad in [Json::Int(-1), Json::Str("many".into())] {
            let req = Json::obj(vec![
                ("cmd", Json::Str("compile".into())),
                ("id", Json::Int(2)),
                ("source", Json::Str(DEMO.into())),
                (
                    "options",
                    Json::obj(vec![("inline", Json::Bool(true)), ("inline_budget", bad)]),
                ),
            ]);
            let (resp, _) = service.dispatch(&req);
            assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        }
    }

    #[test]
    fn busy_when_queue_is_zero_and_slot_taken() {
        let cfg = ServiceConfig {
            max_active: 1,
            max_queue: 0,
            ..ServiceConfig::default()
        };
        let service = Service::new(cfg);
        // Take the only slot by hand, then ask for a compile.
        assert!(service.admission.acquire());
        let req = CompileRequest::new(5, RequestSource::Source(DEMO.into()));
        let (resp, _) = service.dispatch(&req.to_json());
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("busy"));
        service.admission.release();
        let (resp, _) = service.dispatch(&req.to_json());
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        let m = service.metrics_snapshot();
        assert_eq!(m.counter_sum("service.busy_rejections"), 1);
    }
}
